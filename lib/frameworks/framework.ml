(** Simulated baseline frameworks.

    The paper compares GCD2 against production end-to-end stacks (TFLite
    and SNPE, both calling Qualcomm's hand-written Hexagon NN library) and
    research tensor compilers (Halide, TVM, RAKE).  None of these exist in
    this environment, so each is reconstructed as a compiler configuration
    on our machine model, encoding exactly the differences the paper
    identifies (Section V-B):

    - {b TFLite}: one uniform SIMD implementation per operator type
      (vrmpy/4-column), a conventional packetizer that treats soft
      dependencies as hard, fixed unrolling, no fused activations in its
      Hexagon delegate path, no division lookup, per-operator (local)
      layout decisions.
    - {b SNPE}: same kernel library, but stronger graph optimizations
      (activation fusion), which is why it usually edges out TFLite.
    - {b GCD2} and ablated variants used throughout Section V:
      [gcd2_b] (tensor optimizations only, baseline packing — Figure 7),
      [no_opt], [plus_selection], [plus_vliw] (the incremental breakdown
      of Figure 9). *)

module Opcost = Gcd2_cost.Opcost
module Packer = Gcd2_sched.Packer
module Simd = Gcd2_codegen.Simd
module Layout = Gcd2_tensor.Layout
module Compiler = Gcd2.Compiler
module Graph = Gcd2_graph.Graph

let uniform_kernel_opcost =
  {
    Opcost.device = Gcd2_devices.Desc.hexagon698;
    strategy = Packer.In_order;
    unroll_mode = `Out 2;
    tune = None;
    eltwise_uv = `Fixed 2;
    layouts = [ Layout.Col4 ];
    simds = [ Simd.I_vrmpy ];
    lut_division = false;
    (* the stock delegates have no transformer kernels at all *)
    attn_kernels = false;
    (* per-node FastRPC + hexagon_nn invocation from the application
       processor, vs GCD2's fully compiled on-DSP runtime *)
    dispatch_us = 30.0;
    (* hexagon_nn keeps activations in its depth-32 format *)
    channel_pad = 32;
    supported =
      (fun op ->
        (* operators the Hexagon delegates lack; they bounce to the CPU
           (and keep the transformer models off the DSP entirely) *)
        match op with
        | Gcd2_graph.Op.Layer_norm | Gcd2_graph.Op.Gelu | Gcd2_graph.Op.Pow _
        | Gcd2_graph.Op.Batch_matmul _ -> false
        | _ -> true);
  }

let tflite =
  {
    Compiler.name = "TFLite";
    opcost = uniform_kernel_opcost;
    selection = Compiler.Local;
    optimize_graph = false;
  }

let snpe =
  {
    Compiler.name = "SNPE";
    opcost = uniform_kernel_opcost;
    selection = Compiler.Local;
    optimize_graph = true;
  }

let gcd2 = { Compiler.default with Compiler.name = "GCD2" }

(** Tensor-compiler optimizations only: GCD2's layouts, instruction
    selection and unrolling, but the baseline (soft-blind) packetizer —
    the paper's GCD_b, its fair comparison against Halide/TVM/RAKE. *)
let gcd2_b =
  {
    Compiler.default with
    Compiler.name = "GCDb";
    opcost = { Opcost.gcd2 with Opcost.strategy = Packer.In_order };
  }

(* ---- ablation ladder of Figure 9 (each adds one optimization) ---- *)

(** No proposed optimizations: uniform instruction, baseline packing, no
    lookup-table division, no adaptive unroll, local decisions. *)
let no_opt =
  {
    Compiler.name = "no-opt";
    opcost = { uniform_kernel_opcost with Opcost.unroll_mode = `None };
    selection = Compiler.Local;
    optimize_graph = true;
  }

(** + instruction and layout selection (global). *)
let plus_selection =
  {
    no_opt with
    Compiler.name = "+select";
    opcost =
      {
        no_opt.Compiler.opcost with
        Opcost.simds = Simd.all;
        layouts = [ Layout.Row_major; Layout.Col1; Layout.Col2; Layout.Col4 ];
        unroll_mode = `Adaptive;
      };
    selection = Compiler.Partitioned 13;
  }

(** + SDA VLIW packing. *)
let plus_vliw =
  {
    plus_selection with
    Compiler.name = "+vliw";
    opcost = { plus_selection.Compiler.opcost with Opcost.strategy = Packer.sda };
  }

(** + other optimizations (division -> lookup): the full GCD2. *)
let plus_other = { plus_vliw with Compiler.name = "+other"; opcost = Opcost.gcd2 }

(* ---- SDA ablations of Figure 11 ---- *)

let with_strategy name strategy =
  {
    Compiler.default with
    Compiler.name = name;
    opcost = { Opcost.gcd2 with Opcost.strategy };
  }

let soft_to_hard = with_strategy "soft_to_hard" Packer.Soft_to_hard
let soft_to_none = with_strategy "soft_to_none" Packer.Soft_to_none

(** End-to-end frameworks compared in Table IV. *)
let end_to_end = [ tflite; snpe; gcd2 ]

let compile config graph = Compiler.compile ~config graph
