(** The concurrent serve daemon: a long-lived multi-domain server behind
    a Unix or TCP socket, speaking {!Gcd2_serve.Serve} request lines and
    {!Protocol} response lines.

    Architecture — three kinds of domain around one bounded queue:

    - an {e accept} domain takes connections off the listening socket
      and offers each to the admission queue ({!Bqueue}); when the queue
      is full the connection is answered with one [outcome=rejected
      code=overloaded] line (a retryable {!Gcd2.Diag} — backpressure,
      not an error) and closed;
    - [workers] {e worker} domains pull connections off the queue and
      serve them to EOF, one request line at a time, through
      {!Gcd2_serve.Serve.serve_one} — so the whole PR-5 policy machinery
      (deadline, bounded retries, degradation, verification) applies
      per-request, per-worker, unchanged;
    - the compile step is wrapped in single-flight deduplication
      ({!Flight}) keyed by the request fingerprint: K identical cold
      requests arriving concurrently perform {e one} compile, with K-1
      waiters sharing the leader's result.  Warm cache hits bypass the
      flight entirely, so concurrent warm traffic never serializes.

    Robustness (PR 10): worker domains run under a {e watchdog} — an
    exception escaping the serve loop (or the injected [pool-worker]
    fault, consulted once per connection) answers the in-flight
    connection with a retryable [code=worker-failed] line, is counted
    in [respawns], and the loop is re-entered, so a crashed worker
    never hangs a client or thins the pool.  With a cache directory
    configured, a {e janitor} domain sweeps it at startup and every
    [janitor_interval_s] (debris, aged quarantine, stale leases, LRU
    size budget — see {!Gcd2_store.Janitor}), and cold compiles go
    through the cross-process lease tier ({!Flight.Disk}) so N daemons
    sharing one store compile each digest once.  Bare [health] and
    [stats] request lines are answered in-frame for load balancers.

    Stats are accumulated per worker (counts plus mergeable
    {!Gcd2_util.Stats.Hist} latency histograms, split cold/warm) and
    merged on demand; with [stats_every > 0] a merged [daemon: ...]
    line is emitted through {!Gcd2_util.Logsink} every that many
    responses.  {!stop} is graceful: the accept loop is retired first,
    then the queue is closed and drained — every admitted connection is
    served to EOF — before the workers are joined. *)

type address =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port; port [0] picks a free port *)

val pp_address : Format.formatter -> address -> unit

type config = {
  address : address;
  workers : int;  (** worker domains serving connections *)
  queue_depth : int;  (** admission-queue capacity (pending connections) *)
  policy : Gcd2_serve.Serve.policy;  (** per-request policy (PR 5) *)
  framework : string;  (** default for request lines that omit it *)
  selection : string;
  device : string;
  tune : Gcd2_codegen.Autotune.config option;
      (** default autotuning config for request lines without a [tune=]
          field; [None] = tuning off *)
  resolve : (?seq:int -> string -> Gcd2_graph.Graph.t) option;
      (** model-name resolution (with the request's optional sequence
          length); [None] uses {!Gcd2_models.Zoo.build}, which pads the
          length to its shape bucket *)
  stats_every : int;  (** emit a stats line every N responses; 0 = never *)
  log_outcomes : bool;  (** log one {!Gcd2_serve.Serve.outcome_line} per request *)
  cache_max_bytes : int option;
      (** janitor entry-bytes budget for the cache directory (LRU
          eviction); [None] = unbounded *)
  janitor_interval_s : float;
      (** seconds between periodic janitor sweeps; [<= 0] disables the
          periodic domain (the startup sweep still runs) *)
  lease_ttl_s : float;  (** cross-process lease staleness bound (PR 10) *)
}

(** One worker, queue depth 16, {!Gcd2_serve.Serve.default_policy},
    gcd2/13/hexagon698 defaults, zoo resolution, no stats, no logs. *)
val default_config : address -> config

type stats = {
  accepted : int;  (** connections admitted to the queue *)
  rejected : int;  (** connections shed by backpressure *)
  served : int;  (** requests answered successfully (incl. retried/degraded) *)
  failed : int;  (** requests answered with a failure outcome *)
  hits : int;  (** served from the artifact cache *)
  compiles : int;  (** compile-fn invocations after single-flight coalescing *)
  coalesced : int;  (** requests that waited on another request's compile *)
  adopted : int;
      (** requests answered by adopting an artifact another process's
          lease-holding leader published (cross-process flight tier) *)
  retried : int;
  degraded : int;
  cache_misses : int;  (** [cache-misses] trace counter over non-coalesced compiles *)
  cache_bytes : int;
  respawns : int;  (** worker crashes caught and respawned by the watchdog *)
  sweeps : int;  (** janitor sweeps completed (startup + periodic) *)
  cold : Gcd2_util.Stats.Hist.t;  (** latency of served cold requests *)
  warm : Gcd2_util.Stats.Hist.t;
}

type t

(** Bind, listen, and spawn the accept and worker domains.  Unix socket
    paths left over from a dead daemon are removed; [Tcp (host, 0)]
    binds an ephemeral port — read it back with {!address}. *)
val start : config -> t

(** Graceful shutdown: stop accepting, close and drain the admission
    queue (admitted connections are served to EOF), join every domain,
    remove the Unix socket path.  Returns the final merged stats.
    Idempotent — a second call just returns the stats again. *)
val stop : t -> stats

(** Merged stats so far (safe to call while the daemon runs). *)
val stats : t -> stats

(** The bound address — [Tcp] with the actual port after ephemeral bind. *)
val address : t -> address

(** One merged [daemon: ...] stats line (what [stats_every] emits). *)
val stats_line : t -> stats -> string

(** Connect a client socket to [addr] (used by {!Client} and by tests). *)
val connect : address -> Unix.file_descr
