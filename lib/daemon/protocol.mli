(** The daemon's wire format.

    Requests are the existing [gcd2 serve] request lines
    ({!Gcd2_serve.Serve.parse_line}): [MODEL [FRAMEWORK [SELECTION]]
    [device=NAME]], one per line.  Responses are one framed line per
    request, in request order:

    {v
gcd2r1 outcome=ok hit=1 cold=0 ms=1.532 lat=2.1766 sf=none attempts=1 model=efficientnet-b0 device=hexagon698
gcd2r1 outcome=error hit=0 cold=1 ms=12.004 lat=- sf=lead attempts=3 model=x device=hexagon698 code=cache-io msg="..."
    v}

    Every field is [key=value]; [msg] is [%S]-quoted (it may contain
    spaces) and therefore always last.  [lat] is the served compile's
    model latency estimate in ms, [-] when the request failed.  [sf]
    records how the compile was obtained: [lead] (this request ran the
    compile), [wait] (coalesced onto an identical in-flight compile),
    [wait] (coalesced onto an identical in-flight compile), [adopt]
    (another {e process} held the digest's lease and this daemon
    adopted the artifact it published — the cross-process flight tier),
    [none] (warm cache hit or no single-flight involvement).  Blank
    request lines and [#] comments produce no response; a malformed
    request line produces an [outcome=invalid] response, and a request
    shed by the admission queue an [outcome=rejected] one with
    [code=overloaded] (retryable — see {!diag_of}).

    Two bare command lines are answered in-frame rather than compiled:
    [health] (liveness probe: [outcome=health] with a
    [workers=... queue=... served=...] payload in [msg]) and [stats]
    (the full merged stats line in [msg]). *)

type flight = Lead | Wait | Adopt | No_flight

val flight_name : flight -> string

type response = {
  outcome : string;
      (** {!Gcd2_serve.Serve.outcome_name}, or ["rejected"] / ["invalid"] *)
  hit : bool;
  cold : bool;
  ms : float;  (** server-side request wall time *)
  lat : float option;  (** model latency estimate of the served compile *)
  flight : flight;
  attempts : int;
  model : string;
  device : string;
  code : string option;  (** {!Gcd2.Diag.code_name} on failure *)
  msg : string option;
}

(** One response line (no trailing newline). *)
val render : response -> string

(** Parse a response line; [Error reason] on anything malformed. *)
val parse : string -> (response, string) result

val of_served : flight:flight -> Gcd2_serve.Serve.served -> response

(** The backpressure response: [outcome=rejected code=overloaded]. *)
val reject : model:string -> device:string -> response

(** The response to an unparseable request line. *)
val invalid : reason:string -> response

(** The response to a bare [health]/[stats] command line:
    [outcome=command], payload in [msg]. *)
val status : command:string -> payload:string -> response

(** Reconstruct a typed diagnostic from a failure response ([code=] name
    looked up in {!Gcd2.Diag.all_codes}), so a client regains the
    [retryable] bit — a [rejected] response maps to a retryable
    [Overloaded]. *)
val diag_of : response -> Gcd2.Diag.t option
