(** Bounded multi-producer/multi-consumer queue: the daemon's admission
    queue.

    A mutex/condvar queue with a hard capacity.  Producers never block —
    {!try_push} reports [false] when the queue is full (the accept loop
    turns that into a retryable rejection, which is the backpressure
    contract: under overload the server sheds load immediately instead
    of queueing unboundedly).  Consumers block in {!pop} until an item
    or {!close}; a closed queue still drains — items admitted before
    the close are handed out before [pop] returns [None] — which is
    what makes shutdown graceful. *)

type 'a t

(** [create ~capacity] — an empty queue holding at most [capacity]
    items.  [Invalid_argument] if [capacity < 1]. *)
val create : capacity:int -> 'a t

(** Enqueue without blocking: [false] when the queue is full or closed
    (the item is not enqueued). *)
val try_push : 'a t -> 'a -> bool

(** Dequeue, blocking while the queue is empty and open.  [None] once
    the queue is closed {e and} drained. *)
val pop : 'a t -> 'a option

(** Close the queue: further pushes fail, blocked and future [pop]s
    return [None] after the remaining items drain.  Idempotent. *)
val close : 'a t -> unit

(** Items currently queued. *)
val length : 'a t -> int

val closed : 'a t -> bool
