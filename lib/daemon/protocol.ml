(** The daemon's framed response line (see the interface). *)

module Diag = Gcd2.Diag

let magic = "gcd2r1"

type flight = Lead | Wait | Adopt | No_flight

let flight_name = function
  | Lead -> "lead"
  | Wait -> "wait"
  | Adopt -> "adopt"
  | No_flight -> "none"

let flight_of_name = function
  | "lead" -> Some Lead
  | "wait" -> Some Wait
  | "adopt" -> Some Adopt
  | "none" -> Some No_flight
  | _ -> None

type response = {
  outcome : string;
  hit : bool;
  cold : bool;
  ms : float;
  lat : float option;
  flight : flight;
  attempts : int;
  model : string;
  device : string;
  code : string option;
  msg : string option;
}

let render r =
  let b = Buffer.create 128 in
  Buffer.add_string b magic;
  let kv k v =
    Buffer.add_char b ' ';
    Buffer.add_string b k;
    Buffer.add_char b '=';
    Buffer.add_string b v
  in
  kv "outcome" r.outcome;
  kv "hit" (if r.hit then "1" else "0");
  kv "cold" (if r.cold then "1" else "0");
  kv "ms" (Printf.sprintf "%.3f" r.ms);
  kv "lat" (match r.lat with None -> "-" | Some l -> Printf.sprintf "%.4f" l);
  kv "sf" (flight_name r.flight);
  kv "attempts" (string_of_int r.attempts);
  kv "model" r.model;
  kv "device" r.device;
  (match r.code with None -> () | Some c -> kv "code" c);
  (* msg is %S-quoted and must stay last: it is the only field that may
     contain spaces, so the parser can treat everything before it as
     whitespace-separated key=value tokens *)
  (match r.msg with None -> () | Some m -> kv "msg" (Printf.sprintf "%S" m));
  Buffer.contents b

let parse line =
  let fail reason = Error (Printf.sprintf "%s: %s" reason line) in
  (* split off the quoted msg first; everything before it is plain tokens *)
  let head, msg =
    let marker = " msg=" in
    let rec find i =
      if i + String.length marker > String.length line then None
      else if String.sub line i (String.length marker) = marker then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> (line, Ok None)
    | Some i ->
      let quoted = String.sub line (i + 5) (String.length line - i - 5) in
      let msg =
        match Scanf.sscanf quoted "%S%!" (fun s -> s) with
        | s -> Ok (Some s)
        | exception _ -> Error ()
      in
      (String.sub line 0 i, msg)
  in
  match msg with
  | Error () -> fail "bad msg quoting"
  | Ok msg -> (
    let tokens =
      String.split_on_char ' ' head |> List.filter (fun s -> s <> "")
    in
    match tokens with
    | m :: rest when m = magic -> (
      let tbl = Hashtbl.create 12 in
      let ok =
        List.for_all
          (fun tok ->
            match String.index_opt tok '=' with
            | None -> false
            | Some i ->
              Hashtbl.replace tbl
                (String.sub tok 0 i)
                (String.sub tok (i + 1) (String.length tok - i - 1));
              true)
          rest
      in
      if not ok then fail "malformed field"
      else
        let get k = Hashtbl.find_opt tbl k in
        let req k = match get k with Some v -> Ok v | None -> Error k in
        let bool_of = function "1" -> Some true | "0" -> Some false | _ -> None in
        match (req "outcome", req "hit", req "cold", req "ms", req "sf",
               req "attempts", req "model", req "device") with
        | Ok outcome, Ok hit, Ok cold, Ok ms, Ok sf, Ok attempts, Ok model,
          Ok device -> (
          match
            ( bool_of hit,
              bool_of cold,
              float_of_string_opt ms,
              flight_of_name sf,
              int_of_string_opt attempts )
          with
          | Some hit, Some cold, Some ms, Some flight, Some attempts ->
            let lat =
              match get "lat" with
              | None | Some "-" -> None
              | Some l -> float_of_string_opt l
            in
            Ok
              {
                outcome;
                hit;
                cold;
                ms;
                lat;
                flight;
                attempts;
                model;
                device;
                code = get "code";
                msg;
              }
          | _ -> fail "bad field value")
        | _ -> fail "missing field")
    | _ -> fail "bad magic")

let of_served ~flight (s : Gcd2_serve.Serve.served) =
  let diag = s.diag in
  {
    outcome = Gcd2_serve.Serve.outcome_name s.outcome;
    hit = s.hit;
    cold = s.cold;
    ms = s.ms;
    lat = Option.map Gcd2.Compiler.latency_ms s.compiled;
    flight;
    attempts = s.attempts;
    model = s.request.model;
    device = s.request.device;
    code = Option.map (fun (d : Diag.t) -> Diag.code_name d.code) diag;
    msg = Option.map (fun (d : Diag.t) -> d.message) diag;
  }

let reject ~model ~device =
  {
    outcome = "rejected";
    hit = false;
    cold = false;
    ms = 0.;
    lat = None;
    flight = No_flight;
    attempts = 0;
    model;
    device;
    code = Some (Diag.code_name Diag.Overloaded);
    msg = Some "admission queue full; retry after backoff";
  }

let invalid ~reason =
  {
    outcome = "invalid";
    hit = false;
    cold = false;
    ms = 0.;
    lat = None;
    flight = No_flight;
    attempts = 0;
    model = "-";
    device = "-";
    code = Some (Diag.code_name Diag.Invalid_request);
    msg = Some reason;
  }

(* health/stats reuse the response frame so every client (and load
   balancer probe) parses them with the one parser: the command name is
   the outcome, the payload is the quoted msg. *)
let status ~command ~payload =
  {
    outcome = command;
    hit = false;
    cold = false;
    ms = 0.;
    lat = None;
    flight = No_flight;
    attempts = 0;
    model = "-";
    device = "-";
    code = None;
    msg = Some payload;
  }

let diag_of r =
  match r.code with
  | None -> None
  | Some name -> (
    match
      List.find_opt (fun c -> Diag.code_name c = name) Diag.all_codes
    with
    | None -> None
    | Some code ->
      Some
        (Diag.make ~model:r.model code
           (Option.value r.msg ~default:(Printf.sprintf "[%s]" name))))
