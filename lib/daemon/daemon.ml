(** The concurrent serve daemon (see the interface). *)

module Serve = Gcd2_serve.Serve
module Compiler = Gcd2.Compiler
module Diag = Gcd2.Diag
module Hist = Gcd2_util.Stats.Hist
module Logsink = Gcd2_util.Logsink
module Fault = Gcd2_util.Fault
module Janitor = Gcd2_store.Janitor
module Lease = Gcd2_store.Lease

type address = Unix_sock of string | Tcp of string * int

let pp_address ppf = function
  | Unix_sock p -> Format.fprintf ppf "unix:%s" p
  | Tcp (h, p) -> Format.fprintf ppf "tcp:%s:%d" h p

type config = {
  address : address;
  workers : int;
  queue_depth : int;
  policy : Serve.policy;
  framework : string;
  selection : string;
  device : string;
  tune : Gcd2_codegen.Autotune.config option;
  resolve : (?seq:int -> string -> Gcd2_graph.Graph.t) option;
  stats_every : int;
  log_outcomes : bool;
  cache_max_bytes : int option;
  janitor_interval_s : float;
  lease_ttl_s : float;
}

let default_config address =
  {
    address;
    workers = 1;
    queue_depth = 16;
    policy = Serve.default_policy;
    framework = "gcd2";
    selection = "13";
    device = "hexagon698";
    tune = None;
    resolve = None;
    stats_every = 0;
    log_outcomes = false;
    cache_max_bytes = None;
    janitor_interval_s = 60.0;
    lease_ttl_s = Lease.default_ttl_s;
  }

type stats = {
  accepted : int;
  rejected : int;
  served : int;
  failed : int;
  hits : int;
  compiles : int;
  coalesced : int;
  adopted : int;
  retried : int;
  degraded : int;
  cache_misses : int;
  cache_bytes : int;
  respawns : int;
  sweeps : int;
  cold : Hist.t;
  warm : Hist.t;
}

(* per-worker accumulators: touched only under [stats_mu], so a reader
   merging them never sees a half-recorded request *)
type wstats = {
  mutable w_served : int;
  mutable w_failed : int;
  mutable w_hits : int;
  mutable w_coalesced : int;
  mutable w_adopted : int;
  mutable w_retried : int;
  mutable w_degraded : int;
  mutable w_cache_misses : int;
  mutable w_cache_bytes : int;
  w_cold : Hist.t;
  w_warm : Hist.t;
}

let wstats_create () =
  {
    w_served = 0;
    w_failed = 0;
    w_hits = 0;
    w_coalesced = 0;
    w_adopted = 0;
    w_retried = 0;
    w_degraded = 0;
    w_cache_misses = 0;
    w_cache_bytes = 0;
    w_cold = Hist.create ();
    w_warm = Hist.create ();
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  resolved : address;
  queue : Unix.file_descr Bqueue.t;
  (* in-process flights carry the disk-tier role along with the result,
     so followers report [wait] while their leader reports what the
     disk tier actually did (led / adopted / local) *)
  flight : ((Compiler.compiled, Diag.t) result * Flight.Disk.role) Flight.t;
  accepted : int Atomic.t;
  rejected : int Atomic.t;
  compiles : int Atomic.t;
  responses : int Atomic.t;
  respawns : int Atomic.t;
  sweeps : int Atomic.t;
  started : float;
  stopping : bool Atomic.t;
  seen_mu : Mutex.t;
  seen : (string, unit) Hashtbl.t;
  (* request text -> fingerprint digest: resolving the model and
     fingerprinting the graph cost low milliseconds of CPU, and the
     mapping is deterministic — computing it once per distinct request
     keeps the warm path cheap under load *)
  digests : (string, string option) Hashtbl.t;
  stats_mu : Mutex.t;
  wstats : wstats array;
  mutable accept_d : unit Domain.t option;
  mutable worker_ds : unit Domain.t list;
  mutable janitor_d : unit Domain.t option;
  mutable stopped : bool;
}

let address t = t.resolved

(* ---------- stats ---------- *)

let snapshot t =
  Mutex.protect t.stats_mu (fun () ->
      let cold = Hist.create () and warm = Hist.create () in
      let served = ref 0
      and failed = ref 0
      and hits = ref 0
      and coalesced = ref 0
      and adopted = ref 0
      and retried = ref 0
      and degraded = ref 0
      and cache_misses = ref 0
      and cache_bytes = ref 0 in
      Array.iter
        (fun w ->
          served := !served + w.w_served;
          failed := !failed + w.w_failed;
          hits := !hits + w.w_hits;
          coalesced := !coalesced + w.w_coalesced;
          adopted := !adopted + w.w_adopted;
          retried := !retried + w.w_retried;
          degraded := !degraded + w.w_degraded;
          cache_misses := !cache_misses + w.w_cache_misses;
          cache_bytes := !cache_bytes + w.w_cache_bytes;
          Hist.merge_into ~into:cold w.w_cold;
          Hist.merge_into ~into:warm w.w_warm)
        t.wstats;
      {
        accepted = Atomic.get t.accepted;
        rejected = Atomic.get t.rejected;
        compiles = Atomic.get t.compiles;
        served = !served;
        failed = !failed;
        hits = !hits;
        coalesced = !coalesced;
        adopted = !adopted;
        retried = !retried;
        degraded = !degraded;
        cache_misses = !cache_misses;
        cache_bytes = !cache_bytes;
        respawns = Atomic.get t.respawns;
        sweeps = Atomic.get t.sweeps;
        cold;
        warm;
      })

let stats = snapshot

let stats_line t (s : stats) =
  Printf.sprintf
    "daemon: workers=%d queue=%d served=%d failed=%d hits=%d compiles=%d \
     coalesced=%d adopted=%d rejected=%d retried=%d degraded=%d cache_misses=%d \
     cache_bytes=%d respawns=%d sweeps=%d warm_p50=%.2fms warm_p95=%.2fms \
     warm_p99=%.2fms cold_p50=%.1fms cold_p95=%.1fms"
    t.cfg.workers (Bqueue.length t.queue) s.served s.failed s.hits s.compiles
    s.coalesced s.adopted s.rejected s.retried s.degraded s.cache_misses
    s.cache_bytes s.respawns s.sweeps (Hist.p50 s.warm) (Hist.p95 s.warm)
    (Hist.p99 s.warm) (Hist.p50 s.cold) (Hist.p95 s.cold)

let emit_stats t = Logsink.emit_err (stats_line t (snapshot t))

(* What a load balancer needs from one probe line: liveness, capacity,
   error pressure.  [draining] flips during graceful stop so a balancer
   can pull the backend before the listener goes away. *)
let health_payload t =
  let s = snapshot t in
  Printf.sprintf
    "%s pid=%d workers=%d queue=%d/%d served=%d failed=%d respawns=%d uptime_s=%.1f"
    (if Atomic.get t.stopping then "draining" else "ok")
    (Unix.getpid ()) t.cfg.workers (Bqueue.length t.queue) t.cfg.queue_depth
    s.served s.failed s.respawns
    (Gcd2_util.Trace.now () -. t.started)

(* ---------- request path ---------- *)

let default_resolve ?seq model = Gcd2_models.Zoo.build ?seq model

(* Every field that reaches the compiler configuration must be in the
   key, or two requests differing only in that field would coalesce on
   one compile (tuned and untuned compiles have distinct fingerprints).
   The sequence length enters as its shape bucket, never the raw value:
   every length in a bucket resolves to the same graph, so their digest
   computations (and hence their compiles) must share one memo slot. *)
let request_key (req : Serve.request) =
  String.concat "\x00"
    [ req.model; req.framework; req.selection; req.device;
      (match req.tune with
      | Some t -> Gcd2_codegen.Autotune.to_string t
      | None -> "");
      (match req.seq with
      | Some s -> string_of_int (Serve.seq_bucket s)
      | None -> "") ]

(* The request's fingerprint digest, memoized per distinct request text;
   [None] when the request cannot even be resolved (it will fail in
   [Serve.serve_one] with a proper diagnostic). *)
let digest_of t (req : Serve.request) =
  let key = request_key req in
  match Mutex.protect t.seen_mu (fun () -> Hashtbl.find_opt t.digests key) with
  | Some d -> d
  | None ->
    let d =
      match
        Serve.config_of ~device:req.device ?tune:req.tune ~framework:req.framework
          ~selection:req.selection ()
      with
      | Error _ -> None
      | Ok config -> (
        let resolve = Option.value t.cfg.resolve ~default:default_resolve in
        match resolve ?seq:req.seq req.model with
        | exception _ -> None
        | graph -> Some (Compiler.fingerprint config graph))
    in
    (* two domains may race to compute the same digest; it is
       deterministic, so last-write-wins is fine *)
    Mutex.protect t.seen_mu (fun () -> Hashtbl.replace t.digests key d);
    d

(* First sight of this request in the daemon, and not already cached on
   disk?  Then its latency belongs in the cold population. *)
let classify_cold t digest =
  match digest with
  | None -> true
  | Some digest ->
    let seen =
      Mutex.protect t.seen_mu (fun () ->
          Hashtbl.mem t.seen digest
          ||
          (Hashtbl.add t.seen digest ();
           false))
    in
    let on_disk =
      match t.cfg.policy.cache_dir with
      | Some dir -> Sys.file_exists (Gcd2_store.Cache.entry_path dir digest)
      | None -> false
    in
    not (seen || on_disk)

(* The single-flight compile hook handed to [Serve.serve_one]: warm
   cache entries bypass the flight entirely (lookups are read-only, so
   concurrent warm hits must not serialize), cold compiles coalesce on
   the request fingerprint. *)
let compile_sf t ~digest role ~config ~cache_dir ~jobs ~deadline_ms graph =
  match cache_dir with
  | None ->
    (* the uncached-fallback attempt: its result never reaches the
       cache, so there is nothing to coalesce on *)
    Atomic.incr t.compiles;
    Serve.default_compile ~config ~cache_dir ~jobs ~deadline_ms graph
  | Some dir ->
    let digest =
      match digest with
      | Some d -> d
      | None -> Compiler.fingerprint config graph
    in
    if Sys.file_exists (Gcd2_store.Cache.entry_path dir digest) then
      Serve.default_compile ~config ~cache_dir ~jobs ~deadline_ms graph
    else
      let r, who =
        Flight.run t.flight digest (fun () ->
            (* in-process leader for this digest: go through the disk
               tier, so of N daemons sharing the store at most one
               process compiles while the others poll-then-adopt *)
            let has_artifact () =
              Sys.file_exists (Gcd2_store.Cache.entry_path dir digest)
            in
            Flight.Disk.run ~dir ~digest ~ttl_s:t.cfg.lease_ttl_s ?deadline_ms
              ~has_artifact (fun drole ->
                (match drole with
                | Flight.Disk.Adopted -> ()
                | Flight.Disk.Led | Flight.Disk.Local -> Atomic.incr t.compiles);
                Serve.default_compile ~config ~cache_dir ~jobs ~deadline_ms graph))
      in
      (match who with
      | Flight.Leader ->
        role :=
          (match snd r with
          | Flight.Disk.Adopted -> Protocol.Adopt
          | Flight.Disk.Led | Flight.Disk.Local -> Protocol.Lead)
      | Flight.Follower -> role := Protocol.Wait);
      fst r

let record t widx (s : Serve.served) (role : Protocol.flight) =
  Mutex.protect t.stats_mu (fun () ->
      let w = t.wstats.(widx) in
      (match s.outcome with
      | Serve.Ok_ | Serve.Retried | Serve.Degraded ->
        w.w_served <- w.w_served + 1;
        if s.hit then w.w_hits <- w.w_hits + 1;
        (match s.outcome with
        | Serve.Retried -> w.w_retried <- w.w_retried + 1
        | Serve.Degraded -> w.w_degraded <- w.w_degraded + 1
        | _ -> ());
        Hist.add (if s.cold then w.w_cold else w.w_warm) s.ms
      | Serve.Timed_out | Serve.Failed -> w.w_failed <- w.w_failed + 1);
      (match role with
      | Protocol.Wait -> w.w_coalesced <- w.w_coalesced + 1
      | Protocol.Adopt -> w.w_adopted <- w.w_adopted + 1
      | _ -> ());
      (* fold this compile's trace counters into the worker's tally —
         followers share the leader's compile, so only the leader's copy
         counts, or one coalesced compile would be tallied K times *)
      match (s.compiled, role) with
      | Some c, (Protocol.Lead | Protocol.Adopt | Protocol.No_flight) ->
        w.w_cache_misses <-
          w.w_cache_misses + Gcd2_util.Trace.counter c.Compiler.trace "cache-misses";
        w.w_cache_bytes <-
          w.w_cache_bytes + Gcd2_util.Trace.counter c.Compiler.trace "cache-bytes"
      | _ -> ())

let respond oc resp =
  output_string oc (Protocol.render resp);
  output_char oc '\n';
  flush oc

let bump_responses t =
  let n = Atomic.fetch_and_add t.responses 1 + 1 in
  if t.cfg.stats_every > 0 && n mod t.cfg.stats_every = 0 then emit_stats t

let serve_request t widx oc (req : Serve.request) =
  let digest = digest_of t req in
  let cold = classify_cold t digest in
  let role = ref Protocol.No_flight in
  let served =
    Serve.serve_one ?resolve:t.cfg.resolve
      ~compile:(compile_sf t ~digest role)
      t.cfg.policy ~cold req
  in
  record t widx served !role;
  if t.cfg.log_outcomes then
    Logsink.emit
      (Serve.outcome_line ~extra:("sf=" ^ Protocol.flight_name !role) served);
  respond oc (Protocol.of_served ~flight:!role served);
  bump_responses t

let handle_conn t widx fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let line_no = ref 0 in
  (try
     let rec loop () =
       match input_line ic with
       | exception End_of_file -> ()
       | raw ->
         incr line_no;
         (match String.lowercase_ascii (String.trim raw) with
         | "health" ->
           respond oc (Protocol.status ~command:"health" ~payload:(health_payload t));
           bump_responses t
         | "stats" ->
           respond oc
             (Protocol.status ~command:"stats" ~payload:(stats_line t (snapshot t)));
           bump_responses t
         | _ -> (
           match
             Serve.parse_line ~framework:t.cfg.framework
               ~selection:t.cfg.selection ~device:t.cfg.device ?tune:t.cfg.tune
               ~line:!line_no raw
           with
           | Ok None -> ()  (* blank/comment: no response *)
           | Error pe ->
             respond oc (Protocol.invalid ~reason:pe.reason);
             bump_responses t
           | Ok (Some req) -> serve_request t widx oc req));
         loop ()
     in
     loop ()
   with _ -> ());
  (* both channels share [fd], so close it exactly once, via the raw
     descriptor — closing each channel would close the same fd number
     twice, and between the two closes a concurrent accept can be handed
     that number, silently wiring two connections together *)
  (try flush oc with Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------- domains ---------- *)

(* A crashed worker still has its connection in hand: answer it with a
   retryable worker-failed line (the client's policy machinery treats
   it like any transient failure) and close, so the crash costs the
   client one retry, never a hung connection. *)
let answer_crash fd exn =
  (try
     let oc = Unix.out_channel_of_descr fd in
     respond oc
       {
         Protocol.outcome = "error";
         hit = false;
         cold = false;
         ms = 0.;
         lat = None;
         flight = Protocol.No_flight;
         attempts = 1;
         model = "-";
         device = "-";
         code = Some (Diag.code_name Diag.Worker_failed);
         msg = Some ("worker crashed: " ^ Printexc.to_string exn);
       }
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* The worker body under a watchdog: an exception escaping the serve
   loop (a bug, or the injected [pool-worker] fault consulted once per
   connection) is counted, logged, and the loop re-entered — the domain
   never silently dies with connections still queued.  Each respawn
   consumed one connection (answered retryable above), so even a
   fault probability of 1 drains the queue and terminates. *)
let worker t widx () =
  let loop () =
    let rec go () =
      match Bqueue.pop t.queue with
      | None -> ()
      | Some fd ->
        (match
           Fault.fire "pool-worker";
           handle_conn t widx fd
         with
        | () -> ()
        | exception exn ->
          answer_crash fd exn;
          raise exn);
        go ()
    in
    go ()
  in
  let rec supervise () =
    match loop () with
    | () -> ()
    | exception exn ->
      Atomic.incr t.respawns;
      Logsink.emit_err
        (Printf.sprintf "daemon: worker %d crashed (%s); respawning" widx
           (Printexc.to_string exn));
      supervise ()
  in
  supervise ()

(* Startup + periodic cache-directory sweeps (see {!Gcd2_store.Janitor}).
   The domain sleeps in short ticks so [stop] is prompt. *)
let janitor_config t =
  {
    Janitor.default with
    Janitor.max_bytes = t.cfg.cache_max_bytes;
    lease_ttl_s = t.cfg.lease_ttl_s;
  }

let sweep_once t dir =
  match Janitor.sweep ~dir (janitor_config t) with
  | r ->
    Atomic.incr t.sweeps;
    if
      r.Janitor.tmp_removed + r.Janitor.bad_removed + r.Janitor.leases_broken
      + r.Janitor.evicted + r.Janitor.errors
      > 0
    then Logsink.emit_err ("daemon: " ^ Janitor.report_line r)
  | exception _ -> ()

let janitor_loop t dir () =
  let rec loop () =
    let rec sleep elapsed =
      if (not (Atomic.get t.stopping)) && elapsed < t.cfg.janitor_interval_s then begin
        Unix.sleepf 0.1;
        sleep (elapsed +. 0.1)
      end
    in
    sleep 0.0;
    if not (Atomic.get t.stopping) then begin
      sweep_once t dir;
      loop ()
    end
  in
  loop ()

let reject_conn t conn =
  Atomic.incr t.rejected;
  (try
     let oc = Unix.out_channel_of_descr conn in
     output_string oc (Protocol.render (Protocol.reject ~model:"-" ~device:"-"));
     output_char oc '\n';
     flush oc
   with _ -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error _ -> ()
    | conn, _ ->
      if Atomic.get t.stopping then (
        try Unix.close conn with Unix.Unix_error _ -> ())
      else begin
        if Bqueue.try_push t.queue conn then Atomic.incr t.accepted
        else reject_conn t conn;
        loop ()
      end
  in
  loop ()

(* ---------- lifecycle ---------- *)

let resolve_ip host =
  match Unix.inet_addr_of_string host with
  | ip -> ip
  | exception Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

let connect addr =
  match addr with
  | Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (resolve_ip host, port))
     with e -> (try Unix.close fd with _ -> ()); raise e);
    fd

let start cfg =
  if cfg.workers < 1 then invalid_arg "Daemon.start: workers must be >= 1";
  (* a client that disconnects mid-response must cost an EPIPE in that
     worker's write (swallowed by [handle_conn]), not a fatal SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd, resolved =
    match cfg.address with
    | Unix_sock path ->
      if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Unix_sock path)
    | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_ip host, port));
      Unix.listen fd 64;
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, port))
  in
  Serve.reset_degradation_log ();
  let t =
    {
      cfg;
      listen_fd;
      resolved;
      queue = Bqueue.create ~capacity:cfg.queue_depth;
      flight = Flight.create ();
      accepted = Atomic.make 0;
      rejected = Atomic.make 0;
      compiles = Atomic.make 0;
      responses = Atomic.make 0;
      respawns = Atomic.make 0;
      sweeps = Atomic.make 0;
      started = Gcd2_util.Trace.now ();
      stopping = Atomic.make false;
      seen_mu = Mutex.create ();
      seen = Hashtbl.create 64;
      digests = Hashtbl.create 64;
      stats_mu = Mutex.create ();
      wstats = Array.init cfg.workers (fun _ -> wstats_create ());
      accept_d = None;
      worker_ds = [];
      janitor_d = None;
      stopped = false;
    }
  in
  (* recover the store before serving from it: debris and stale leases
     of a previous (possibly SIGKILLed) incarnation are swept now, then
     periodically *)
  (match cfg.policy.Serve.cache_dir with
  | Some dir ->
    sweep_once t dir;
    if cfg.janitor_interval_s > 0.0 then
      t.janitor_d <- Some (Domain.spawn (janitor_loop t dir))
  | None -> ());
  t.accept_d <- Some (Domain.spawn (accept_loop t));
  t.worker_ds <- List.init cfg.workers (fun i -> Domain.spawn (worker t i));
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (* a plain [close] does not reliably wake a blocked [accept]; a
       throwaway connection does, and the loop then sees [stopping] *)
    (try Unix.close (connect t.resolved) with _ -> ());
    Option.iter Domain.join t.accept_d;
    t.accept_d <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* close-then-join drains: connections already admitted are served
       to EOF before the workers exit *)
    Bqueue.close t.queue;
    List.iter Domain.join t.worker_ds;
    t.worker_ds <- [];
    Option.iter Domain.join t.janitor_d;
    t.janitor_d <- None;
    (match t.resolved with
    | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    if t.cfg.stats_every > 0 || t.cfg.log_outcomes then emit_stats t
  end;
  snapshot t
