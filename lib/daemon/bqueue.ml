(** Bounded multi-producer/multi-consumer queue (see the interface). *)

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

let try_push t x =
  Mutex.protect t.mu (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  Mutex.protect t.mu (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.nonempty t.mu
      done;
      (* drain-then-stop: items enqueued before [close] are still handed
         out, so a graceful shutdown serves everything it admitted *)
      if Queue.is_empty t.items then None else Some (Queue.pop t.items))

let close t =
  Mutex.protect t.mu (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = Mutex.protect t.mu (fun () -> Queue.length t.items)
let closed t = Mutex.protect t.mu (fun () -> t.closed)
