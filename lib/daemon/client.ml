(** A minimal daemon client (see the interface). *)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let open_conn addr =
  let fd = Daemon.connect addr in
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

(* both channels wrap [fd]: flush and close the descriptor exactly once
   (closing each channel would double-close the fd number — a reuse race
   under concurrent connects) *)
let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

(* A daemon shedding a connection closes it with the request line still
   unread on its side, which surfaces here as ECONNRESET rather than a
   clean EOF — but only after every response line already written
   (e.g. the rejection) has been read.  Treat it as end-of-session. *)
let recv t =
  match input_line t.ic with
  | exception End_of_file -> Error "connection closed by daemon"
  | exception Sys_error e -> Error ("connection lost: " ^ e)
  | line -> Protocol.parse line

let request t line =
  send t line;
  recv t

let batch addr lines =
  let t = open_conn addr in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      (* a daemon shedding this connection closes it as soon as the
         rejection is written — possibly before every request line went
         out (EPIPE here); the rejection is still waiting to be read *)
      (try List.iter (send t) lines with Sys_error _ -> ());
      (* half-close: the daemon sees EOF after the last request and
         closes the connection once every response is written *)
      (try Unix.shutdown t.fd Unix.SHUTDOWN_SEND
       with Unix.Unix_error _ -> ());
      let rec drain acc =
        match input_line t.ic with
        | exception End_of_file -> List.rev acc
        | exception Sys_error _ -> List.rev acc
        | line -> drain (Protocol.parse line :: acc)
      in
      drain [])
