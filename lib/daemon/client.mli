(** A minimal daemon client: one connection, request lines out,
    {!Protocol} responses back.

    Request lines are {!Gcd2_serve.Serve} request lines; blank lines and
    [#] comments produce no response, so {!request} on one would block —
    send real requests through {!request}, or use {!batch}, which
    half-closes the connection and reads responses to EOF (response
    count then matches the number of {e effective} requests sent). *)

type conn

val open_conn : Daemon.address -> conn

(** Send one request line (newline appended) and read one response. *)
val request : conn -> string -> (Protocol.response, string) result

(** One-shot session: connect, send every line, shutdown the send side,
    read all responses to EOF, close. *)
val batch :
  Daemon.address -> string list -> (Protocol.response, string) result list

val close : conn -> unit
