(** Single-flight deduplication: K concurrent calls with the same key
    perform the work once.

    The daemon keys compiles by their request fingerprint digest
    ({!Gcd2.Compiler.fingerprint}); when K identical requests are in
    flight at once, the first caller (the {e leader}) runs the compile
    while the other K-1 ({e followers}) block on a condition variable
    and then share the leader's result.  The in-flight table is a
    mutex/condvar-guarded hashtable; entries exist only while the leader
    runs, so a call arriving {e after} the leader published starts a
    fresh flight — it will typically be answered by the cache entry the
    leader just stored.

    This table is also the multi-domain safety argument for
    {!Gcd2_store.Cache} within one daemon: for any digest, at most one
    domain is ever inside the compile-and-store path at a time, so the
    cache's store never races itself on an entry (cross-process safety
    is separately guaranteed by {!Gcd2_store.Artifact}'s atomic
    temp-file-then-rename save and checksummed reads, which turn any
    interleaving into a hit or a clean miss, never a torn read).

    If the leader's function raises, the exception (with the leader's
    backtrace) is re-raised in the leader {e and} every follower —
    sharing a failure is as important as sharing a success, or K-1
    callers would immediately re-run a compile that just failed. *)

type role = Leader | Follower

type 'a t

val create : unit -> 'a t

(** [run t key f] — if no call with [key] is in flight, run [f] as
    leader and return [(f (), Leader)]; otherwise block until the
    in-flight leader finishes and return [(its result, Follower)]. *)
val run : 'a t -> string -> (unit -> 'a) -> 'a * role

(** Keys currently in flight (diagnostics/tests). *)
val in_flight : 'a t -> int
