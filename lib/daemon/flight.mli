(** Single-flight deduplication: K concurrent calls with the same key
    perform the work once.

    The daemon keys compiles by their request fingerprint digest
    ({!Gcd2.Compiler.fingerprint}); when K identical requests are in
    flight at once, the first caller (the {e leader}) runs the compile
    while the other K-1 ({e followers}) block on a condition variable
    and then share the leader's result.  The in-flight table is a
    mutex/condvar-guarded hashtable; entries exist only while the leader
    runs, so a call arriving {e after} the leader published starts a
    fresh flight — it will typically be answered by the cache entry the
    leader just stored.

    This table is also the multi-domain safety argument for
    {!Gcd2_store.Cache} within one daemon: for any digest, at most one
    domain is ever inside the compile-and-store path at a time, so the
    cache's store never races itself on an entry (cross-process safety
    is separately guaranteed by {!Gcd2_store.Artifact}'s atomic
    temp-file-then-rename save and checksummed reads, which turn any
    interleaving into a hit or a clean miss, never a torn read).

    If the leader's function raises, the exception (with the leader's
    backtrace) is re-raised in the leader {e and} every follower —
    sharing a failure is as important as sharing a success, or K-1
    callers would immediately re-run a compile that just failed. *)

type role = Leader | Follower

type 'a t

val create : unit -> 'a t

(** [run t key f] — if no call with [key] is in flight, run [f] as
    leader and return [(f (), Leader)]; otherwise block until the
    in-flight leader finishes and return [(its result, Follower)]. *)
val run : 'a t -> string -> (unit -> 'a) -> 'a * role

(** Keys currently in flight (diagnostics/tests). *)
val in_flight : 'a t -> int

(** The cross-process tier: N daemons sharing one artifact store dedup
    cold compiles through {!Gcd2_store.Lease} files in the cache
    directory.  The in-process table above serializes one daemon's
    domains; [Disk.run] is what that table's leader runs, so per digest
    at most one {e process} compiles while the others poll-then-adopt
    the artifact it publishes.

    Leases here are an optimization, never a correctness gate (artifact
    stores are atomic), and [Disk.run] is built to {e never wedge}: a
    follower waits at most [min (2 * ttl) (deadline / 2)] before giving
    up on the leader and compiling locally, a stale lease (dead pid —
    e.g. SIGKILLed leader — or expired stamp) is broken on sight, and
    any lease-layer failure (I/O error, injected [flight-lease] fault)
    degrades to a local compile. *)
module Disk : sig
  type role =
    | Led  (** held the lease and ran the compile *)
    | Adopted  (** adopted an artifact another process published *)
    | Local  (** compiled without a lease (fallback — timeout or lease I/O failure) *)

  val role_name : role -> string

  (** [run ~dir ~digest ?ttl_s ?deadline_ms ~has_artifact f] — returns
      [(f role, role)].  [f Adopted] must observe the published
      artifact (a cache-reading compile); [f Led]/[f Local] must
      produce and publish it.  While [f Led] runs, a heartbeat thread
      refreshes the lease stamp at [ttl_s / 3] so a slow compile is not
      mistaken for a dead leader; the lease is released (and the
      heartbeat joined) on return {e and} on raise. *)
  val run :
    dir:string ->
    digest:string ->
    ?ttl_s:float ->
    ?deadline_ms:float ->
    has_artifact:(unit -> bool) ->
    (role -> 'a) ->
    'a * role
end
