(** Single-flight deduplication (see the interface). *)

type role = Leader | Follower

type 'a cell = {
  cond : Condition.t;
  (* written exactly once, by the leader, under the table mutex *)
  mutable result : ('a, exn * Printexc.raw_backtrace) result option;
}

type 'a t = {
  mu : Mutex.t;
  inflight : (string, 'a cell) Hashtbl.t;
}

let create () = { mu = Mutex.create (); inflight = Hashtbl.create 16 }

let in_flight t = Mutex.protect t.mu (fun () -> Hashtbl.length t.inflight)

let run t key f =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.inflight key with
  | Some cell ->
    (* follower: the compile for [key] is already running — wait for the
       leader's broadcast and share its result (or its exception) *)
    let rec wait () =
      match cell.result with
      | Some r -> r
      | None ->
        Condition.wait cell.cond t.mu;
        wait ()
    in
    let r = wait () in
    Mutex.unlock t.mu;
    (match r with
    | Ok v -> (v, Follower)
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
  | None ->
    (* leader: claim the key, run [f] outside the lock, publish *)
    let cell = { cond = Condition.create (); result = None } in
    Hashtbl.add t.inflight key cell;
    Mutex.unlock t.mu;
    let r =
      match f () with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mu;
    (* remove before publishing: an arrival after this point starts a
       fresh flight instead of reading a result that may already be
       stale with respect to the cache *)
    Hashtbl.remove t.inflight key;
    cell.result <- Some r;
    Condition.broadcast cell.cond;
    Mutex.unlock t.mu;
    (match r with
    | Ok v -> (v, Leader)
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
