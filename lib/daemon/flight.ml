(** Single-flight deduplication (see the interface). *)

type role = Leader | Follower

type 'a cell = {
  cond : Condition.t;
  (* written exactly once, by the leader, under the table mutex *)
  mutable result : ('a, exn * Printexc.raw_backtrace) result option;
}

type 'a t = {
  mu : Mutex.t;
  inflight : (string, 'a cell) Hashtbl.t;
}

let create () = { mu = Mutex.create (); inflight = Hashtbl.create 16 }

let in_flight t = Mutex.protect t.mu (fun () -> Hashtbl.length t.inflight)

let run t key f =
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.inflight key with
  | Some cell ->
    (* follower: the compile for [key] is already running — wait for the
       leader's broadcast and share its result (or its exception) *)
    let rec wait () =
      match cell.result with
      | Some r -> r
      | None ->
        Condition.wait cell.cond t.mu;
        wait ()
    in
    let r = wait () in
    Mutex.unlock t.mu;
    (match r with
    | Ok v -> (v, Follower)
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
  | None ->
    (* leader: claim the key, run [f] outside the lock, publish *)
    let cell = { cond = Condition.create (); result = None } in
    Hashtbl.add t.inflight key cell;
    Mutex.unlock t.mu;
    let r =
      match f () with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mu;
    (* remove before publishing: an arrival after this point starts a
       fresh flight instead of reading a result that may already be
       stale with respect to the cache *)
    Hashtbl.remove t.inflight key;
    cell.result <- Some r;
    Condition.broadcast cell.cond;
    Mutex.unlock t.mu;
    (match r with
    | Ok v -> (v, Leader)
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt)

(* ------------------------------------------------------------------ *)
(* Disk tier                                                           *)

module Lease = Gcd2_store.Lease

module Disk = struct
  type role = Led | Adopted | Local

  let role_name = function Led -> "led" | Adopted -> "adopted" | Local -> "local"

  (* Follower poll cadence.  Coarse enough that N waiting daemons cost
     nothing, fine enough that adoption latency is invisible next to a
     cold compile. *)
  let poll_s = 0.02

  (* The heartbeat refreshes the lease stamp at ttl/3 but sleeps in
     short ticks, so [stop]+[join] returns in at most one tick — the
     leader must be able to release promptly without racing a late
     refresh that would resurrect the lease file. *)
  let tick_s = 0.05

  let heartbeat lease ~ttl_s stop =
    let period = ttl_s /. 3.0 in
    let rec sleep elapsed =
      if (not (Atomic.get stop)) && elapsed < period then begin
        Thread.delay tick_s;
        sleep (elapsed +. tick_s)
      end
    in
    let rec loop () =
      sleep 0.0;
      if not (Atomic.get stop) then
        if try Lease.refresh lease with _ -> false then loop ()
      (* refresh said the lease is no longer ours: stop quietly; the
         compile itself is still safe (stores are atomic) *)
    in
    loop ()

  let run ~dir ~digest ?(ttl_s = Lease.default_ttl_s) ?deadline_ms ~has_artifact f =
    let t0 = Gcd2_util.Trace.now () in
    (* Never wedge: a follower waits for the leader only while (a) the
       deadline leaves room to still compile locally afterwards and (b)
       the wait is under 2x ttl — a leader that is alive but stuck past
       its own heartbeat refresh forfeits its followers. *)
    let budget_s =
      let cap = 2.0 *. ttl_s in
      match deadline_ms with
      | Some ms -> Float.min cap (0.5 *. ms /. 1000.0)
      | None -> cap
    in
    let lead lease =
      let stop = Atomic.make false in
      let hb = Thread.create (fun () -> heartbeat lease ~ttl_s stop) () in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          (try Thread.join hb with _ -> ());
          try Lease.release lease with _ -> ())
        (fun () -> f Led)
    in
    let rec go () =
      if has_artifact () then (f Adopted, Adopted)
      else
        match Lease.acquire ~dir digest with
        | Ok lease -> (lead lease, Led)
        | Error (`Io _) -> (f Local, Local)
        | exception Gcd2_util.Fault.Injected _ -> (f Local, Local)
        | Error `Held -> (
          match Lease.state ~ttl_s ~dir digest with
          | Lease.Stale _ ->
            (try ignore (Lease.break ~dir digest)
             with Gcd2_util.Fault.Injected _ -> ());
            go ()
          | Lease.Free -> go ()
          | Lease.Held _ ->
            if Gcd2_util.Trace.now () -. t0 > budget_s then (f Local, Local)
            else begin
              Thread.delay poll_s;
              go ()
            end)
    in
    go ()
end
