(** Instructions of the simulated mobile DSP.

    The subset below is modelled on the Hexagon HVX instruction set as the
    paper describes it (its Figures 1 and 5): wide SIMD multiplies with
    scalar-register operands ([vmpy], [vmpa], [vrmpy]), widening
    accumulation, saturating narrowing for requantization, permutes, a
    vector table lookup (used to replace division, one of the paper's
    "other optimizations"), plus the scalar/memory operations needed to
    drive them.

    Multiply semantics (paper Figure 1):
    - [Vmpy (p, v, r)] — each of the 128 byte lanes of [v] is multiplied by
      one of the four signed bytes of scalar [r] (lane [i] uses byte
      [i mod 4]); products of even lanes accumulate (saturating, 16-bit)
      into the low half of pair [p] and odd lanes into the high half.
    - [Vmpa (p, q, r)] — dual multiply-accumulate over the 256 byte lanes of
      pair [q]: for output lane [j] of the low (resp. high) half,
      [lo[j] += q0[2j]*b0 + q1[2j]*b1] and [hi[j] += q0[2j+1]*b2 +
      q1[2j+1]*b3], saturating 16-bit, where [q0]/[q1] are the two vectors
      of [q] and [b0..b3] the bytes of [r].
    - [Vrmpy (v, u, r)] — reducing multiply: each of the 32 word lanes of
      [v] accumulates the dot product of 4 consecutive bytes of [u] with
      the 4 bytes of [r] (32-bit, wrapping). *)

type width = W8 | W16 | W32

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4
let pp_width ppf w = Fmt.string ppf (match w with W8 -> "b" | W16 -> "h" | W32 -> "w")

(** Memory operand: contents of [base] plus a constant byte offset. *)
type addr = { base : Reg.t; offset : int }

type salu_op = Add | Sub | And | Or | Xor | Shl | Shr | Min | Max

type valu_op = Vadd | Vsub | Vmax | Vmin | Vavg | Vand | Vor | Vxor

type operand = Reg of Reg.t | Imm of int

type t =
  | Smovi of Reg.t * int  (** rd <- imm *)
  | Salu of salu_op * Reg.t * Reg.t * operand  (** rd <- rs op src *)
  | Smul of Reg.t * Reg.t * operand  (** rd <- rs * src (wrapping 32-bit) *)
  | Sload of Reg.t * addr  (** rd <- mem32\[addr\] *)
  | Sstore of addr * Reg.t  (** mem32\[addr\] <- rs *)
  | Vload of Reg.t * addr  (** vd <- mem\[addr .. addr+127\] *)
  | Vstore of addr * Reg.t  (** mem\[addr .. addr+127\] <- vs *)
  | Vmovi of Reg.t * int  (** splat immediate byte to every lane (V or P) *)
  | Valu of valu_op * width * Reg.t * Reg.t * Reg.t  (** vd <- va op vb, lane-wise *)
  | Vaddw of Reg.t * Reg.t  (** pair (32-bit lanes) += vector (16-bit lanes), widening *)
  | Vmpy of Reg.t * Reg.t * Reg.t  (** pair (16-bit) += v * splat4(scalar); see module doc *)
  | Vmpyb of Reg.t * Reg.t * Reg.t * int
      (** pair (16-bit) += v * broadcast(byte \[sel\] of scalar); the
          byte-select form lets one scalar load feed four reduction steps *)
  | Vmul of Reg.t * Reg.t * Reg.t  (** pair (16-bit) += va * vb elementwise, even/odd split *)
  | Vmpa of Reg.t * Reg.t * Reg.t  (** pair (16-bit) += dual-mac of pair by 4 scalars *)
  | Vrmpy of Reg.t * Reg.t * Reg.t  (** vector (32-bit) += 4-lane dot products *)
  | Vscale of Reg.t * Reg.t * int * int  (** vd(32) <- sat32(round(vs * mult / 2^shift)) *)
  | Vscalev of Reg.t * Reg.t * Reg.t * int
      (** per-lane fixed-point scaling: vd.w\[l\] <- sat32(round(vs.w\[l\] *
          vm.w\[l\] / 2^shift)) — the per-channel requantization form *)
  | Vpack of Reg.t * Reg.t * width  (** vd <- saturating narrow of pair from given lane width *)
  | Vshuff of Reg.t * Reg.t * width  (** pd <- interleave the lanes of the two halves of ps *)
  | Vlut of Reg.t * Reg.t * int  (** vd\[i\] <- table\[id\]\[vs\[i\] land 255\] *)
  | Vdup of Reg.t * Reg.t  (** vd <- splat of scalar low byte *)

let operand_regs = function Reg r -> [ r ] | Imm _ -> []

(** Registers written by the instruction. *)
let defs = function
  | Smovi (rd, _) | Salu (_, rd, _, _) | Smul (rd, _, _) | Sload (rd, _) -> [ rd ]
  | Sstore _ | Vstore _ -> []
  | Vload (vd, _) | Vmovi (vd, _) -> [ vd ]
  | Valu (_, _, vd, _, _) -> [ vd ]
  | Vaddw (pd, _) -> [ pd ]
  | Vmpy (pd, _, _) | Vmpyb (pd, _, _, _) | Vmpa (pd, _, _) -> [ pd ]
  | Vmul (pd, _, _) -> [ pd ]
  | Vrmpy (vd, _, _) -> [ vd ]
  | Vscale (vd, _, _, _) | Vscalev (vd, _, _, _) | Vpack (vd, _, _) | Vshuff (vd, _, _)
  | Vlut (vd, _, _)
  | Vdup (vd, _) -> [ vd ]

(** Registers read by the instruction.  Accumulating forms read their
    destination. *)
let uses = function
  | Smovi _ | Vmovi _ -> []
  | Salu (_, _, rs, op) | Smul (_, rs, op) -> rs :: operand_regs op
  | Sload (_, a) | Vload (_, a) -> [ a.base ]
  | Sstore (a, rs) | Vstore (a, rs) -> [ a.base; rs ]
  | Valu (_, _, _, va, vb) -> [ va; vb ]
  | Vaddw (pd, vs) -> [ pd; vs ]
  | Vmpy (pd, vs, rt) | Vmpyb (pd, vs, rt, _) | Vmpa (pd, vs, rt) | Vrmpy (pd, vs, rt) ->
    [ pd; vs; rt ]
  | Vmul (pd, va, vb) -> [ pd; va; vb ]
  | Vscale (_, vs, _, _) | Vlut (_, vs, _) -> [ vs ]
  | Vscalev (_, vs, vm, _) -> [ vs; vm ]
  | Vpack (_, ps, _) | Vshuff (_, ps, _) -> [ ps ]
  | Vdup (_, rs) -> [ rs ]

(** Memory accessed by the instruction, if any. *)
type mem_access = Mem_load of addr * int | Mem_store of addr * int

let mem_access = function
  | Sload (_, a) -> Some (Mem_load (a, 4))
  | Sstore (a, _) -> Some (Mem_store (a, 4))
  | Vload (_, a) -> Some (Mem_load (a, Reg.vector_bytes))
  | Vstore (a, _) -> Some (Mem_store (a, Reg.vector_bytes))
  | _ -> None

(** Issue class, which determines slots and latency (see {!Iclass}). *)
let iclass = function
  | Smovi _ | Salu _ -> Iclass.Salu
  | Smul _ -> Iclass.Smul
  | Sload _ | Vload _ -> Iclass.Ld
  | Sstore _ | Vstore _ -> Iclass.St
  | Vmovi _ | Valu _ | Vaddw _ -> Iclass.Valu
  | Vmpy _ | Vmpyb _ | Vmul _ | Vscale _ | Vscalev _ -> Iclass.Vmpy
  | Vmpa _ | Vrmpy _ -> Iclass.Vmpy_deep
  | Vpack _ -> Iclass.Vshift
  | Vshuff _ | Vlut _ | Vdup _ -> Iclass.Vperm

let latency i = Iclass.latency (iclass i)

(** Per-device {!latency}. *)
let latency_on d i = Iclass.latency_on d (iclass i)

(** Number of 8-bit multiply-accumulate operations performed (for the
    utilization counters). *)
let macs = function
  | Vmpy _ | Vmpyb _ | Vmul _ -> 128
  | Vmpa _ -> 256
  | Vrmpy _ -> 128
  | _ -> 0

let pp_salu_op ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
    | Shl -> "asl" | Shr -> "asr" | Min -> "min" | Max -> "max")

let pp_valu_op ppf op =
  Fmt.string ppf
    (match op with
    | Vadd -> "vadd" | Vsub -> "vsub" | Vmax -> "vmax" | Vmin -> "vmin"
    | Vavg -> "vavg" | Vand -> "vand" | Vor -> "vor" | Vxor -> "vxor")

let pp_addr ppf a = Fmt.pf ppf "[%a+%d]" Reg.pp a.base a.offset

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Fmt.pf ppf "#%d" i

let pp ppf = function
  | Smovi (rd, i) -> Fmt.pf ppf "%a = #%d" Reg.pp rd i
  | Salu (op, rd, rs, o) ->
    Fmt.pf ppf "%a = %a(%a, %a)" Reg.pp rd pp_salu_op op Reg.pp rs pp_operand o
  | Smul (rd, rs, o) -> Fmt.pf ppf "%a = mpyi(%a, %a)" Reg.pp rd Reg.pp rs pp_operand o
  | Sload (rd, a) -> Fmt.pf ppf "%a = memw%a" Reg.pp rd pp_addr a
  | Sstore (a, rs) -> Fmt.pf ppf "memw%a = %a" pp_addr a Reg.pp rs
  | Vload (vd, a) -> Fmt.pf ppf "%a = vmem%a" Reg.pp vd pp_addr a
  | Vstore (a, vs) -> Fmt.pf ppf "vmem%a = %a" pp_addr a Reg.pp vs
  | Vmovi (vd, i) -> Fmt.pf ppf "%a = vsplat(#%d)" Reg.pp vd i
  | Valu (op, w, vd, va, vb) ->
    Fmt.pf ppf "%a.%a = %a(%a, %a)" Reg.pp vd pp_width w pp_valu_op op Reg.pp va Reg.pp vb
  | Vaddw (pd, vs) -> Fmt.pf ppf "%a.w += vwiden(%a.h)" Reg.pp pd Reg.pp vs
  | Vmpy (pd, vs, rt) -> Fmt.pf ppf "%a.h += vmpy(%a.b, %a.b)" Reg.pp pd Reg.pp vs Reg.pp rt
  | Vmpyb (pd, vs, rt, sel) ->
    Fmt.pf ppf "%a.h += vmpy(%a.b, %a.b[%d])" Reg.pp pd Reg.pp vs Reg.pp rt sel
  | Vmul (pd, va, vb) -> Fmt.pf ppf "%a.h += vmul(%a.b, %a.b)" Reg.pp pd Reg.pp va Reg.pp vb
  | Vmpa (pd, ps, rt) -> Fmt.pf ppf "%a.h += vmpa(%a.ub, %a.b)" Reg.pp pd Reg.pp ps Reg.pp rt
  | Vrmpy (vd, vs, rt) -> Fmt.pf ppf "%a.w += vrmpy(%a.b, %a.b)" Reg.pp vd Reg.pp vs Reg.pp rt
  | Vscale (vd, vs, m, sh) -> Fmt.pf ppf "%a.w = vscale(%a.w, #%d, #%d)" Reg.pp vd Reg.pp vs m sh
  | Vscalev (vd, vs, vm, sh) ->
    Fmt.pf ppf "%a.w = vscale(%a.w, %a.w, #%d)" Reg.pp vd Reg.pp vs Reg.pp vm sh
  | Vpack (vd, ps, w) -> Fmt.pf ppf "%a = vpack(%a.%a)" Reg.pp vd Reg.pp ps pp_width w
  | Vshuff (pd, ps, w) -> Fmt.pf ppf "%a = vshuff(%a.%a)" Reg.pp pd Reg.pp ps pp_width w
  | Vlut (vd, vs, id) -> Fmt.pf ppf "%a = vlut(%a, table#%d)" Reg.pp vd Reg.pp vs id
  | Vdup (vd, rs) -> Fmt.pf ppf "%a = vdup(%a)" Reg.pp vd Reg.pp rs

let to_string i = Fmt.str "%a" pp i
