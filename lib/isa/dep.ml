(** Classification of dependencies between instructions into the paper's
    {e hard} and {e soft} categories (Section IV-C, footnote 3).

    - A {b hard} dependency means the two instructions must not share a
      VLIW packet (co-issuing them could produce wrong results).
    - A {b soft} dependency allows co-packing: the interlocked pipeline
      still produces the correct result but stalls for [penalty] cycles
      (the paper's Figure 4: two 3-cycle instructions with a soft RAW
      dependency take 4 cycles when packed, versus 6 when not).

    Soft dependencies are only ever RAW or WAR (paper footnote 3).  In this
    machine model:
    - RAW whose producer is a load or scalar ALU/multiply is soft (the
      paper's two examples: load -> arithmetic, scalar add -> consumer);
    - RAW from a vector ALU into a store is soft (Figure 4b);
    - RAW from single-stage vector multiplies, shifts and permutes is soft
      with a longer stall (their results forward with a pipeline bubble);
      only the deep reducing multiplies ([vmpa]/[vrmpy]) are hard;
    - WAR is soft with zero penalty — within a packet the read issues
      before the write commits, so only cross-packet ordering is needed;
    - WAW and all potentially-overlapping memory dependencies are hard. *)

type kind =
  | Hard
  | Soft of int  (** co-packing stall penalty in cycles *)

let pp_kind ppf = function
  | Hard -> Fmt.string ppf "hard"
  | Soft p -> Fmt.pf ppf "soft(%d)" p

(* Strongest-first combination: Hard beats Soft, larger penalty beats
   smaller. *)
let combine a b =
  match (a, b) with
  | Some Hard, _ | _, Some Hard -> Some Hard
  | Some (Soft p), Some (Soft q) -> Some (Soft (max p q))
  | (Some (Soft _) as s), None | None, (Some (Soft _) as s) -> s
  | None, None -> None

let regs_intersect xs ys = List.exists (fun x -> List.exists (Reg.overlap x) ys) xs

let raw_kind_classes producer consumer =
  match producer with
  | Iclass.Ld -> Soft (Iclass.latency Iclass.Ld - 2)
  | Iclass.Salu -> Soft 1
  | Iclass.Smul -> Soft 2
  | Iclass.Vmpy -> Soft 2
  | Iclass.Vshift | Iclass.Vperm -> Soft 1
  | Iclass.Valu -> (match consumer with Iclass.St -> Soft 1 | _ -> Hard)
  | Iclass.St | Iclass.Vmpy_deep -> Hard

(** Per-instruction facts {!classify} derives on every call, precomputed
    once so an O(n²) IDG build does not recompute register sets O(n²)
    times.  {!classify_info} on two [info]s is exactly {!classify} on the
    underlying instructions. *)
type info = {
  inf_defs : Reg.t list;
  inf_uses : Reg.t list;
  inf_mem : Instr.mem_access option;
  inf_class : Iclass.t;
}

let info i =
  {
    inf_defs = Instr.defs i;
    inf_uses = Instr.uses i;
    inf_mem = Instr.mem_access i;
    inf_class = Instr.iclass i;
  }

(* Conservative memory aliasing: accesses through different base registers
   are assumed disjoint (the code generator gives each buffer its own base
   register); same-base accesses alias iff their byte ranges overlap. *)
let mem_conflict_info a b =
  match (a.inf_mem, b.inf_mem) with
  | Some (Instr.Mem_load _), Some (Instr.Mem_load _) | None, _ | _, None -> false
  | Some x, Some y ->
    let range = function Instr.Mem_load (a, n) | Instr.Mem_store (a, n) -> (a, n) in
    let (aa, an), (ba, bn) = (range x, range y) in
    aa.Instr.base = ba.Instr.base
    && aa.offset < ba.offset + bn
    && ba.offset < aa.offset + an

(** [classify_info a b] — {!classify} over precomputed {!info}s ([a]'s
    instruction preceding [b]'s in program order). *)
let classify_info a b =
  let raw =
    if regs_intersect a.inf_defs b.inf_uses then
      Some (raw_kind_classes a.inf_class b.inf_class)
    else None
  in
  let war = if regs_intersect a.inf_uses b.inf_defs then Some (Soft 0) else None in
  let waw = if regs_intersect a.inf_defs b.inf_defs then Some Hard else None in
  let mem = if mem_conflict_info a b then Some Hard else None in
  combine (combine raw war) (combine waw mem)

(** [classify i j] — with [i] preceding [j] in program order — returns the
    dependency from [i] to [j], if any. *)
let classify i j = classify_info (info i) (info j)
