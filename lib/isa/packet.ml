(** VLIW packets: up to four instructions issued together.

    Instructions inside a packet are kept in program order; the machine
    executes them "in parallel" but, because hard-dependent instructions
    are never co-packed, program-order evaluation inside a packet computes
    exactly what the interlocked hardware computes.

    A packet is legal when (1) a slot assignment exists under the
    {!Iclass.slots} constraints, and (2) no two members have a hard
    dependency.  Its cost is the maximum member latency plus the stalls
    induced by intra-packet soft-dependency chains (paper Figure 4) —
    packets do not overlap (paper footnote 5). *)

type t = Instr.t list

module Desc = Gcd2_devices.Desc

let max_size = 4

(** Packet capacity of a device (instructions issued per cycle). *)
let capacity (d : Desc.t) = d.Desc.slot_count

(* Exact slot-assignment check over {!Iclass.slot_mask_on} bitmasks: does
   an injective map of instructions to the device's slots exist?
   Backtracking over at most [slot_count] masks; existence is
   order-independent, so callers may pass masks in any order.  This is
   the packer's hot legality primitive — no lists, no [Instr.t] in
   sight. *)
let masks_feasible ?(desc = Desc.hexagon698) masks =
  let rec assign used = function
    | [] -> true
    | m :: rest ->
      let avail = ref (m land lnot used) and ok = ref false in
      while (not !ok) && !avail <> 0 do
        let bit = !avail land - !avail in
        avail := !avail land lnot bit;
        if assign (used lor bit) rest then ok := true
      done;
      !ok
  in
  List.length masks <= capacity desc && assign 0 masks

(** Does a slot assignment exist for these instructions? *)
let slots_feasible ?(desc = Desc.hexagon698) instrs =
  masks_feasible ~desc (List.map (fun i -> Iclass.slot_mask_on desc (Instr.iclass i)) instrs)

(* Hard dependencies forbid co-packing. *)
let rec no_hard_pairs = function
  | [] -> true
  | i :: rest ->
    List.for_all (fun j -> Dep.classify i j <> Some Dep.Hard) rest
    && no_hard_pairs rest

(** A packet is legal iff it fits the slots and contains no hard
    dependency. *)
let legal ?desc instrs = slots_feasible ?desc instrs && no_hard_pairs instrs

(** [stall p] — extra cycles caused by intra-packet soft-dependency chains:
    the longest penalty-weighted soft path inside the packet. *)
let stall (p : t) =
  let arr = Array.of_list p in
  let n = Array.length arr in
  let extra = Array.make n 0 in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      match Dep.classify arr.(i) arr.(j) with
      | Some (Dep.Soft pen) -> extra.(j) <- max extra.(j) (extra.(i) + pen)
      | Some Dep.Hard | None -> ()
    done
  done;
  Array.fold_left max 0 extra

(** Issue-to-completion cycles of the packet: max latency + soft stalls.
    The empty packet costs nothing. *)
let cycles ?(desc = Desc.hexagon698) (p : t) =
  match p with
  | [] -> 0
  | _ -> List.fold_left (fun m i -> max m (Instr.latency_on desc i)) 0 p + stall p

let pp ppf (p : t) =
  Fmt.pf ppf "{ %a }" Fmt.(list ~sep:(any "; ") Instr.pp) p
