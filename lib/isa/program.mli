(** Programs: trees of zero-overhead hardware loops whose leaves are
    straight-line packet sequences.  Because packets never overlap, every
    cost below is a static quantity that the simulator's dynamic counters
    match exactly. *)

(** Marshaled into compile artifacts: any layout change (here or in
    {!Packet}/{!Instr}) requires updating {!Gcd2_store.Artifact}[.layout],
    or stale cache entries decode as garbage. *)
type node =
  | Block of Packet.t list
  | Loop of { trip : int; body : node list }

type t = {
  name : string;
  nodes : node list;
  tables : (int * int array) list;
      (** lookup tables for {!Instr.Vlut}: id -> 256 byte values *)
}

val make : ?tables:(int * int array) list -> string -> node list -> t

(** Identity for decode caches (e.g. {!Gcd2_vm.Machine}'s translation
    cache).  [same] is physical equality — programs are marshaled into
    compile artifacts and compared structurally by tests, so a stamped
    id field is off the table; physical identity is the only notion that
    survives both.  [identity_hash] is a cheap bounded structural hash,
    usable only to bucket candidates that [same] then confirms. *)
val identity_hash : t -> int

val same : t -> t -> bool

(** Total execution cycles under the device's latencies (default
    {!Gcd2_devices.Desc.hexagon698}). *)
val static_cycles : ?desc:Gcd2_devices.Desc.t -> t -> int

(** Dynamic (trip-weighted) packet count. *)
val packet_count : t -> int

(** Dynamic instruction count. *)
val instr_count : t -> int

(** Dynamic 8-bit multiply-accumulate count. *)
val macs : t -> int

(** Bytes read from / written to memory over the whole execution. *)
val load_bytes : t -> int

val store_bytes : t -> int

(** Static packet count (ignores trip counts) — the paper's Figure 7
    metric. *)
val static_packet_count : t -> int

val pp : Format.formatter -> t -> unit
