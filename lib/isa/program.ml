(** Programs are trees of zero-overhead hardware loops (Hexagon-style
    [loop0]/[loop1]) whose leaves are straight-line sequences of VLIW
    packets.  The compiler emits one program per DNN operator.

    Because packets never overlap (paper footnote 5) the execution time of
    a program is a purely static quantity: the trip-count-weighted sum of
    packet cycles.  The timing reported by the functional simulator
    ({!Gcd2_vm.Machine}) agrees with {!static_cycles} by construction. *)

(* Programs (with the Packet.t / Instr.t inside) are marshaled into
   compile artifacts: any change to these types' layout requires updating
   Gcd2_store.Artifact.layout, or stale cache entries decode as garbage. *)
type node =
  | Block of Packet.t list
  | Loop of { trip : int; body : node list }

type t = {
  name : string;
  nodes : node list;
  tables : (int * int array) list;
      (** lookup tables for {!Instr.Vlut}: id -> 256 byte values *)
}

let make ?(tables = []) name nodes = { name; nodes; tables }

(* Identity for decode caches (the VM's translation cache).  Programs are
   marshaled into compile artifacts and compared structurally by tests, so
   identity must NOT be a stamped id field: a counter would make two
   compiles of the same model produce unequal programs and would collide
   across [Marshal] round-trips.  Instead identity is physical equality —
   the only notion that survives both — bucketed by a cheap bounded
   structural hash. *)
let identity_hash (t : t) = Hashtbl.hash t
let same (a : t) (b : t) = a == b

(* Trip-count-weighted sum of a per-packet integer measure. *)
let sum_packets measure t =
  let rec go nodes =
    List.fold_left
      (fun acc node ->
        match node with
        | Block packets -> acc + List.fold_left (fun a p -> a + measure p) 0 packets
        | Loop { trip; body } -> acc + (trip * go body))
      0 nodes
  in
  go t.nodes

(** Total execution cycles (packets never overlap). *)
let static_cycles ?desc t = sum_packets (Packet.cycles ?desc) t

(** Dynamic packet count. *)
let packet_count t = sum_packets (fun _ -> 1) t

(** Dynamic instruction count. *)
let instr_count t = sum_packets List.length t

(** Dynamic 8-bit multiply-accumulate count. *)
let macs t = sum_packets (fun p -> List.fold_left (fun a i -> a + Instr.macs i) 0 p) t

let packet_bytes select p =
  List.fold_left
    (fun a i ->
      match Instr.mem_access i with
      | Some m -> a + select m
      | None -> a)
    0 p

(** Bytes read from memory over the whole execution. *)
let load_bytes t =
  sum_packets
    (packet_bytes (function Instr.Mem_load (_, n) -> n | Instr.Mem_store _ -> 0))
    t

(** Bytes written to memory over the whole execution. *)
let store_bytes t =
  sum_packets
    (packet_bytes (function Instr.Mem_store (_, n) -> n | Instr.Mem_load _ -> 0))
    t

(** Static (unweighted) packet count of the innermost blocks — the metric
    the paper reports in Figure 7 (right). *)
let static_packet_count t =
  let rec go nodes =
    List.fold_left
      (fun acc node ->
        match node with
        | Block packets -> acc + List.length packets
        | Loop { trip = _; body } -> acc + go body)
      0 nodes
  in
  go t.nodes

let rec pp_node ppf = function
  | Block packets ->
    Fmt.pf ppf "@[<v>%a@]" Fmt.(list Packet.pp) packets
  | Loop { trip; body } ->
    Fmt.pf ppf "@[<v2>loop (trip=%d) {@,%a@]@,}" trip Fmt.(list pp_node) body

let pp ppf t =
  Fmt.pf ppf "@[<v2>program %s {@,%a@]@,}" t.name Fmt.(list pp_node) t.nodes
