(** Instruction classes, VLIW slot constraints and latencies.

    The machine issues packets of up to four instructions.  Each class may
    execute only in certain slots, which is what makes some combinations
    unpackable (the paper's example: two shift operations can never share a
    packet, because shifts are tied to a single slot).

    Slot map (Hexagon-HVX-like):
    {v
      slot 0 : store | load | scalar ALU
      slot 1 : load  | scalar ALU | vector ALU
      slot 2 : vector multiply | vector shift | scalar ALU | vector ALU
      slot 3 : vector multiply | vector permute | scalar ALU | vector ALU
    v}

    Latencies follow the three-stage read/execute/write pipeline of the
    paper's Figure 4 (three cycles for simple operations), with one extra
    execute stage for loads and multiplies and three for the dual/reducing
    multiplies ([vmpa], [vrmpy]) whose adder trees are deeper. *)

type t =
  | Salu  (** scalar ALU: add/sub/logic/moves *)
  | Smul  (** scalar multiply *)
  | Ld    (** scalar or vector load *)
  | St    (** scalar or vector store *)
  | Valu  (** vector ALU: add/sub/min/max/widening accumulate *)
  | Vmpy  (** vector multiply: vmpy/vmpa/vrmpy/scaling *)
  | Vmpy_deep  (** dual / reducing vector multiply: vmpa, vrmpy *)
  | Vshift (** vector shift / narrowing pack *)
  | Vperm  (** vector permute: shuffle, table lookup, splat *)

let all = [ Salu; Smul; Ld; St; Valu; Vmpy; Vmpy_deep; Vshift; Vperm ]

module Desc = Gcd2_devices.Desc

(** Index of the class in a {!Gcd2_devices.Desc} per-class array (the
    descriptor's documented fixed order). *)
let index = function
  | Salu -> 0
  | Smul -> 1
  | Ld -> 2
  | St -> 3
  | Valu -> 4
  | Vmpy -> 5
  | Vmpy_deep -> 6
  | Vshift -> 7
  | Vperm -> 8

let name = function
  | Salu -> "salu"
  | Smul -> "smul"
  | Ld -> "ld"
  | St -> "st"
  | Valu -> "valu"
  | Vmpy -> "vmpy"
  | Vmpy_deep -> "vmpy+"
  | Vshift -> "vshift"
  | Vperm -> "vperm"

(** {!slots} as a bitmask (bit [s] set iff slot [s] is allowed) on a
    given device — the form the packer's feasibility check consumes. *)
let slot_mask_on (d : Desc.t) c = d.Desc.slot_masks.(index c)

(** Slots in which an instruction of this class may issue on device [d]. *)
let slots_on d c =
  let m = slot_mask_on d c in
  List.filter (fun s -> m land (1 lsl s) <> 0) (List.init 16 Fun.id)

(** Cycles from issue to result write-back on device [d]. *)
let latency_on (d : Desc.t) c = d.Desc.latencies.(index c)

(** Slots (0..3) in which the class may issue on the default
    {!Desc.hexagon698} (the slot map of the module documentation). *)
let slots c = slots_on Desc.hexagon698 c

(** {!slots} as a bitmask on the default {!Desc.hexagon698}. *)
let slot_mask c = slot_mask_on Desc.hexagon698 c

(** Cycles from issue to result write-back on the default
    {!Desc.hexagon698} (see module doc). *)
let latency c = latency_on Desc.hexagon698 c

let pp ppf c = Fmt.string ppf (name c)
