(** Instruction classes, VLIW slot constraints and latencies.

    The machine issues packets of up to four instructions.  Each class may
    execute only in certain slots, which is what makes some combinations
    unpackable (the paper's example: two shift operations can never share a
    packet, because shifts are tied to a single slot).

    Slot map (Hexagon-HVX-like):
    {v
      slot 0 : store | load | scalar ALU
      slot 1 : load  | scalar ALU | vector ALU
      slot 2 : vector multiply | vector shift | scalar ALU | vector ALU
      slot 3 : vector multiply | vector permute | scalar ALU | vector ALU
    v}

    Latencies follow the three-stage read/execute/write pipeline of the
    paper's Figure 4 (three cycles for simple operations), with one extra
    execute stage for loads and multiplies and three for the dual/reducing
    multiplies ([vmpa], [vrmpy]) whose adder trees are deeper. *)

type t =
  | Salu  (** scalar ALU: add/sub/logic/moves *)
  | Smul  (** scalar multiply *)
  | Ld    (** scalar or vector load *)
  | St    (** scalar or vector store *)
  | Valu  (** vector ALU: add/sub/min/max/widening accumulate *)
  | Vmpy  (** vector multiply: vmpy/vmpa/vrmpy/scaling *)
  | Vmpy_deep  (** dual / reducing vector multiply: vmpa, vrmpy *)
  | Vshift (** vector shift / narrowing pack *)
  | Vperm  (** vector permute: shuffle, table lookup, splat *)

let all = [ Salu; Smul; Ld; St; Valu; Vmpy; Vmpy_deep; Vshift; Vperm ]

let name = function
  | Salu -> "salu"
  | Smul -> "smul"
  | Ld -> "ld"
  | St -> "st"
  | Valu -> "valu"
  | Vmpy -> "vmpy"
  | Vmpy_deep -> "vmpy+"
  | Vshift -> "vshift"
  | Vperm -> "vperm"

(** Slots (0..3) in which an instruction of this class may issue. *)
let slots = function
  | St -> [ 0 ]
  | Ld -> [ 0; 1 ]
  | Salu -> [ 0; 1; 2; 3 ]
  | Smul -> [ 2; 3 ]
  | Valu -> [ 1; 2; 3 ]
  | Vmpy | Vmpy_deep -> [ 2; 3 ]
  | Vshift -> [ 2 ]
  | Vperm -> [ 3 ]

(** {!slots} as a bitmask (bit [s] set iff slot [s] is allowed) — the
    form the packer's feasibility check consumes. *)
let slot_mask c = List.fold_left (fun m s -> m lor (1 lsl s)) 0 (slots c)

(** Cycles from issue to result write-back (see module doc). *)
let latency = function
  | Salu -> 3
  | Smul -> 4
  | Ld -> 4
  | St -> 3
  | Valu -> 3
  | Vmpy -> 4
  | Vmpy_deep -> 6
  | Vshift -> 3
  | Vperm -> 3

let pp ppf c = Fmt.string ppf (name c)
