(** VLIW packets: up to four instructions issued together, kept in program
    order.  Legality = a slot assignment exists and no two members are
    hard-dependent.  Cost = max member latency + intra-packet soft stall
    chains; packets never overlap (paper footnote 5). *)

type t = Instr.t list

val max_size : int

(** Packet capacity of a device (its [slot_count]). *)
val capacity : Gcd2_devices.Desc.t -> int

(** Does an injective slot assignment exist for these
    {!Iclass.slot_mask_on} bitmasks (order-irrelevant) on the device's
    slots (default {!Gcd2_devices.Desc.hexagon698})?  The packer's
    allocation-free legality primitive. *)
val masks_feasible : ?desc:Gcd2_devices.Desc.t -> int list -> bool

(** Does a slot assignment exist for these instructions? *)
val slots_feasible : ?desc:Gcd2_devices.Desc.t -> Instr.t list -> bool

(** Slot-feasible and free of intra-packet hard dependencies. *)
val legal : ?desc:Gcd2_devices.Desc.t -> Instr.t list -> bool

(** Extra cycles from the longest penalty-weighted soft chain inside. *)
val stall : t -> int

(** Issue-to-completion cycles of the packet (0 when empty), under the
    device's latencies (default {!Gcd2_devices.Desc.hexagon698}). *)
val cycles : ?desc:Gcd2_devices.Desc.t -> t -> int

val pp : Format.formatter -> t -> unit
