(** VLIW packets: up to four instructions issued together, kept in program
    order.  Legality = a slot assignment exists and no two members are
    hard-dependent.  Cost = max member latency + intra-packet soft stall
    chains; packets never overlap (paper footnote 5). *)

type t = Instr.t list

val max_size : int

(** Does an injective slot assignment exist for these
    {!Iclass.slot_mask} bitmasks (order-irrelevant)?  The packer's
    allocation-free legality primitive. *)
val masks_feasible : int list -> bool

(** Does a slot assignment exist for these instructions? *)
val slots_feasible : Instr.t list -> bool

(** Slot-feasible and free of intra-packet hard dependencies. *)
val legal : Instr.t list -> bool

(** Extra cycles from the longest penalty-weighted soft chain inside. *)
val stall : t -> int

(** Issue-to-completion cycles of the packet (0 when empty). *)
val cycles : t -> int

val pp : Format.formatter -> t -> unit
