(** Instructions of the simulated mobile DSP — a Hexagon-HVX-like subset
    as the paper describes it: wide SIMD multiplies taking scalar-register
    operands ([vmpy]/[vmpa]/[vrmpy], its Figure 1), widening accumulation,
    saturating narrowing for requantization, permutes, and a vector table
    lookup used for the division-to-lookup optimization.

    Multiply semantics (paper Figure 1):
    - [Vmpy (p, v, r)]: lane [i] of [v] times byte [i mod 4] of scalar
      [r]; even-lane products accumulate (saturating 16-bit) into the low
      half of pair [p], odd lanes into the high half.
    - [Vmpyb (p, v, r, sel)]: like [Vmpy] but every lane multiplies byte
      [sel] of [r] — the byte-select form lets one scalar load feed four
      reduction steps.
    - [Vmpa (p, q, r)]: dual multiply-accumulate over the 256 lanes of
      pair [q] against the four bytes of [r] (saturating 16-bit).
    - [Vrmpy (v, u, r)]: each 32-bit word lane of [v] accumulates the dot
      product of 4 consecutive bytes of [u] with the 4 bytes of [r]. *)

type width = W8 | W16 | W32

val width_bytes : width -> int
val pp_width : Format.formatter -> width -> unit

(** Memory operand: contents of [base] plus a constant byte offset. *)
type addr = { base : Reg.t; offset : int }

type salu_op = Add | Sub | And | Or | Xor | Shl | Shr | Min | Max
type valu_op = Vadd | Vsub | Vmax | Vmin | Vavg | Vand | Vor | Vxor
type operand = Reg of Reg.t | Imm of int

type t =
  | Smovi of Reg.t * int  (** rd <- imm *)
  | Salu of salu_op * Reg.t * Reg.t * operand  (** rd <- rs op src *)
  | Smul of Reg.t * Reg.t * operand  (** rd <- rs * src (wrapping 32-bit) *)
  | Sload of Reg.t * addr  (** rd <- mem32\[addr\] *)
  | Sstore of addr * Reg.t  (** mem32\[addr\] <- rs *)
  | Vload of Reg.t * addr  (** vd <- mem\[addr .. addr+127\] *)
  | Vstore of addr * Reg.t  (** mem\[addr .. addr+127\] <- vs *)
  | Vmovi of Reg.t * int  (** splat immediate byte to every lane (V or P) *)
  | Valu of valu_op * width * Reg.t * Reg.t * Reg.t  (** vd <- va op vb, lane-wise *)
  | Vaddw of Reg.t * Reg.t  (** pair (32-bit lanes) += vector (16-bit lanes) *)
  | Vmpy of Reg.t * Reg.t * Reg.t  (** pair (16-bit) += v * 4-byte-cyclic scalar *)
  | Vmpyb of Reg.t * Reg.t * Reg.t * int  (** pair (16-bit) += v * byte \[sel\] of scalar *)
  | Vmul of Reg.t * Reg.t * Reg.t  (** pair (16-bit) += va * vb elementwise *)
  | Vmpa of Reg.t * Reg.t * Reg.t  (** pair (16-bit) += dual-mac of pair by 4 scalars *)
  | Vrmpy of Reg.t * Reg.t * Reg.t  (** vector (32-bit) += 4-lane dot products *)
  | Vscale of Reg.t * Reg.t * int * int  (** vd(32) <- sat32(round(vs * mult / 2^shift)) *)
  | Vscalev of Reg.t * Reg.t * Reg.t * int
      (** per-lane fixed-point scaling (per-channel requantization) *)
  | Vpack of Reg.t * Reg.t * width  (** vd <- saturating narrow of a pair *)
  | Vshuff of Reg.t * Reg.t * width  (** pd <- interleave the two halves of ps *)
  | Vlut of Reg.t * Reg.t * int  (** vd\[i\] <- table\[id\]\[vs\[i\]\] *)
  | Vdup of Reg.t * Reg.t  (** vd <- splat of scalar low byte *)

val operand_regs : operand -> Reg.t list

(** Registers written / read (accumulating forms read their destination). *)
val defs : t -> Reg.t list

val uses : t -> Reg.t list

type mem_access = Mem_load of addr * int | Mem_store of addr * int

val mem_access : t -> mem_access option

(** Issue class (slots + latency; see {!Iclass}). *)
val iclass : t -> Iclass.t

val latency : t -> int

(** Per-device {!latency}. *)
val latency_on : Gcd2_devices.Desc.t -> t -> int

(** 8-bit multiply-accumulates performed (utilization counters). *)
val macs : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
