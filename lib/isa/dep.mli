(** Hard/soft dependency classification (paper Section IV-C, footnote 3).

    A {e hard} dependency forbids co-packing; a {e soft} one allows it at a
    stall penalty (the interlocked pipeline still computes the correct
    result).  Soft dependencies are only ever RAW or WAR. *)

type kind =
  | Hard
  | Soft of int  (** co-packing stall penalty in cycles *)

val pp_kind : Format.formatter -> kind -> unit

(** [classify i j] — with [i] before [j] in program order — the strongest
    dependency from [i] to [j], if any.  Memory accesses through different
    base registers are assumed disjoint (the code generator gives each
    buffer its own base register). *)
val classify : Instr.t -> Instr.t -> kind option

(** Per-instruction facts (register sets, memory access, class) that
    {!classify} recomputes on every call.  An O(n²) pairwise
    classification should build one [info] per instruction and use
    {!classify_info}. *)
type info

val info : Instr.t -> info

(** [classify_info a b] ≡ [classify i j] for the instructions [a] and [b]
    were built from ([i] before [j] in program order). *)
val classify_info : info -> info -> kind option
