(** Instruction classes: VLIW slot constraints and latencies.

    Packets hold up to four instructions, one per slot; each class may
    issue only in certain slots (e.g. vector shifts only in slot 2, which
    is why two shifts can never share a packet — the paper's example). *)

type t =
  | Salu  (** scalar ALU: add/sub/logic/moves *)
  | Smul  (** scalar multiply *)
  | Ld  (** scalar or vector load *)
  | St  (** scalar or vector store *)
  | Valu  (** vector ALU: add/sub/min/max/widening accumulate *)
  | Vmpy  (** single-stage vector multiply / fixed-point scaling *)
  | Vmpy_deep  (** dual / reducing vector multiply: vmpa, vrmpy *)
  | Vshift  (** vector shift / narrowing pack *)
  | Vperm  (** vector permute: shuffle, table lookup, splat *)

val all : t list
val name : t -> string

(** Index of the class in a {!Gcd2_devices.Desc} per-class array
    ([slot_masks] / [latencies]). *)
val index : t -> int

(** Slots in which the class may issue on a device. *)
val slots_on : Gcd2_devices.Desc.t -> t -> int list

(** {!slots_on} as a bitmask: bit [s] set iff slot [s] is allowed. *)
val slot_mask_on : Gcd2_devices.Desc.t -> t -> int

(** Issue-to-writeback cycles on a device. *)
val latency_on : Gcd2_devices.Desc.t -> t -> int

(** Slots (0..3) in which the class may issue on the default
    {!Gcd2_devices.Desc.hexagon698}. *)
val slots : t -> int list

(** {!slots} as a bitmask: bit [s] set iff slot [s] is allowed. *)
val slot_mask : t -> int

(** Issue-to-writeback cycles on the default device (three-stage pipeline
    of the paper's Fig. 4, plus extra execute stages for
    loads/multiplies). *)
val latency : t -> int

val pp : Format.formatter -> t -> unit
