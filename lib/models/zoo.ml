(** The model zoo: the ten DNNs of the paper's Table IV, with the paper's
    reported metadata (MACs, operator counts, measured latencies) kept
    alongside for the benchmark harness to print paper-vs-measured rows. *)

type task =
  | Classification
  | Style_transfer
  | Image_translation
  | Super_resolution
  | Detection_2d
  | Detection_3d
  | Nlp
  | Speech

let task_name = function
  | Classification -> "Classification"
  | Style_transfer -> "Style transfer"
  | Image_translation -> "Image translation"
  | Super_resolution -> "Super resolution"
  | Detection_2d -> "2D object detection"
  | Detection_3d -> "3D object detection"
  | Nlp -> "NLP"
  | Speech -> "Speech recognition"

type entry = {
  name : string;
  kind : string;  (** 2D CNN / GAN / Transformer *)
  task : task;
  build : unit -> Gcd2_graph.Graph.t;
  seq_build : (int * (int -> Gcd2_graph.Graph.t)) option;
      (** [(max_seq, build_at)] for sequence-parametric models: the
          model's native maximum sequence length and a builder at an
          explicit length.  [None] for fixed-shape models. *)
  paper_gmacs : float;
  paper_ops : int;
  paper_tflite_ms : float option;  (** "-" in Table IV when unsupported *)
  paper_snpe_ms : float option;
  paper_gcd2_ms : float;
}

let all =
  [
    {
      name = "MobileNet-V3";
      kind = "2D CNN";
      task = Classification;
      build = Classification.mobilenet_v3;
      seq_build = None;
      paper_gmacs = 0.22;
      paper_ops = 193;
      paper_tflite_ms = Some 7.5;
      paper_snpe_ms = Some 6.2;
      paper_gcd2_ms = 4.0;
    };
    {
      name = "EfficientNet-b0";
      kind = "2D CNN";
      task = Classification;
      build = Classification.efficientnet_b0;
      seq_build = None;
      paper_gmacs = 0.40;
      paper_ops = 254;
      paper_tflite_ms = Some 9.1;
      paper_snpe_ms = Some 9.2;
      paper_gcd2_ms = 6.0;
    };
    {
      name = "ResNet-50";
      kind = "2D CNN";
      task = Classification;
      build = Classification.resnet50;
      seq_build = None;
      paper_gmacs = 4.1;
      paper_ops = 140;
      paper_tflite_ms = Some 13.9;
      paper_snpe_ms = Some 11.6;
      paper_gcd2_ms = 7.1;
    };
    {
      name = "FST";
      kind = "2D CNN";
      task = Style_transfer;
      build = Generative.fst;
      seq_build = None;
      paper_gmacs = 161.0;
      paper_ops = 64;
      paper_tflite_ms = Some 935.0;
      paper_snpe_ms = Some 870.0;
      paper_gcd2_ms = 211.0;
    };
    {
      name = "CycleGAN";
      kind = "GAN";
      task = Image_translation;
      build = Generative.cyclegan;
      seq_build = None;
      paper_gmacs = 186.0;
      paper_ops = 84;
      paper_tflite_ms = Some 450.0;
      paper_snpe_ms = Some 366.0;
      paper_gcd2_ms = 181.0;
    };
    {
      name = "WDSR-b";
      kind = "2D CNN";
      task = Super_resolution;
      build = Generative.wdsr_b;
      seq_build = None;
      paper_gmacs = 11.5;
      paper_ops = 32;
      paper_tflite_ms = Some 400.0;
      paper_snpe_ms = Some 137.0;
      paper_gcd2_ms = 66.7;
    };
    {
      name = "EfficientDet-d0";
      kind = "2D CNN";
      task = Detection_2d;
      build = Detection.efficientdet_d0;
      seq_build = None;
      paper_gmacs = 2.6;
      paper_ops = 822;
      paper_tflite_ms = Some 62.8;
      paper_snpe_ms = None;
      paper_gcd2_ms = 26.0;
    };
    {
      name = "PixOr";
      kind = "2D CNN";
      task = Detection_3d;
      build = Detection.pixor;
      seq_build = None;
      paper_gmacs = 8.8;
      paper_ops = 150;
      paper_tflite_ms = Some 43.0;
      paper_snpe_ms = Some 26.4;
      paper_gcd2_ms = 11.7;
    };
    {
      name = "TinyBERT";
      kind = "Transformer";
      task = Nlp;
      build = (fun () -> Transformers.tinybert ());
      seq_build = Some (256, fun seq -> Transformers.tinybert ~seq ());
      paper_gmacs = 1.4;
      paper_ops = 211;
      paper_tflite_ms = None;
      paper_snpe_ms = None;
      paper_gcd2_ms = 12.2;
    };
    {
      name = "Conformer";
      kind = "Transformer";
      task = Speech;
      build = (fun () -> Transformers.conformer ());
      seq_build = Some (1504, fun seq -> Transformers.conformer ~seq ());
      paper_gmacs = 5.6;
      paper_ops = 675;
      paper_tflite_ms = None;
      paper_snpe_ms = None;
      paper_gcd2_ms = 65.0;
    };
  ]

let find name =
  match List.find_opt (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name) all with
  | Some e -> e
  | None -> invalid_arg (Fmt.str "Zoo.find: unknown model %S" name)

let names = List.map (fun e -> e.name) all

(* Sequence lengths are served from padded shape buckets: the smallest
   power of two >= the request (floor 16, so degenerate requests don't
   compile near-empty graphs), clamped to the model's native maximum.
   One compiled artifact then serves every length in its bucket. *)
let bucket ~max_seq seq =
  if seq <= 0 then invalid_arg (Fmt.str "Zoo.bucket: sequence length %d" seq);
  let rec next p = if p >= seq then p else next (2 * p) in
  min max_seq (next 16)

let build ?seq name =
  let e = find name in
  match (seq, e.seq_build) with
  | None, _ -> e.build ()
  | Some s, Some (max_seq, at) -> at (bucket ~max_seq s)
  | Some _, None ->
    invalid_arg (Fmt.str "Zoo.build: model %S has no sequence dimension" e.name)

(* Zoo graphs carry shapes only; functional execution (Runtime / Interp)
   needs parameter values.  Deterministic in [seed], so two calls produce
   structurally equal graphs — anything keyed on graph content (the
   compile cache, fingerprints) still works. *)
let with_random_weights ?(seed = 7) (g : Gcd2_graph.Graph.t) =
  let module Graph = Gcd2_graph.Graph in
  let module Op = Gcd2_graph.Op in
  let module T = Gcd2_tensor.Tensor in
  let rng = Gcd2_util.Rng.create seed in
  let weight_q = Gcd2_tensor.Quant.make (1.0 /. 64.0) in
  let cin (n : Graph.node) =
    let src = Graph.node g (List.hd n.Graph.inputs) in
    let s = src.Graph.out_shape in
    s.(Array.length s - 1)
  in
  let nodes =
    Array.map
      (fun (n : Graph.node) ->
        if n.Graph.weight <> None then n
        else
          let dims =
            match n.Graph.op with
            | Op.Constant { shape } -> Some (Array.copy shape)
            | Op.Conv2d { kh; kw; cout; _ } -> Some [| kh; kw; cin n; cout |]
            | Op.Transposed_conv2d { kh; kw; cout; _ } -> Some [| kh; kw; cin n; cout |]
            | Op.Depthwise_conv2d { kh; kw; _ } -> Some [| kh; kw; cin n |]
            | Op.Matmul { cout; _ } -> Some [| cin n; cout |]
            | _ -> None
          in
          match dims with
          | None -> n
          | Some dims ->
            { n with Graph.weight = Some (T.random ~quant:weight_q rng dims) })
      g.Graph.nodes
  in
  { Graph.nodes }
