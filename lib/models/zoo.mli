(** The model zoo: the ten DNNs of the paper's Table IV, with the paper's
    reported metadata so the harness can print paper-vs-measured rows. *)

type task =
  | Classification
  | Style_transfer
  | Image_translation
  | Super_resolution
  | Detection_2d
  | Detection_3d
  | Nlp
  | Speech

val task_name : task -> string

type entry = {
  name : string;
  kind : string;  (** 2D CNN / GAN / Transformer *)
  task : task;
  build : unit -> Gcd2_graph.Graph.t;
  seq_build : (int * (int -> Gcd2_graph.Graph.t)) option;
      (** [(max_seq, build_at)] for sequence-parametric models; [None]
          for fixed-shape models *)
  paper_gmacs : float;
  paper_ops : int;
  paper_tflite_ms : float option;  (** None where Table IV shows "-" *)
  paper_snpe_ms : float option;
  paper_gcd2_ms : float;
}

val all : entry list

(** Case-insensitive lookup; raises [Invalid_argument] when unknown. *)
val find : string -> entry

val names : string list

(** The shape bucket a dynamic sequence length is served from: the
    smallest power of two >= [seq] (floor 16), clamped to [max_seq].
    Raises [Invalid_argument] on non-positive lengths. *)
val bucket : max_seq:int -> int -> int

(** Build a zoo model by name.  [?seq] pads a dynamic sequence length to
    its {!bucket} and builds the model at the bucket — so every length in
    a bucket yields the same graph, and hence the same compile-cache
    fingerprint.  Raises [Invalid_argument] for unknown models, for
    [?seq] on fixed-shape models, and for non-positive lengths. *)
val build : ?seq:int -> string -> Gcd2_graph.Graph.t

(** [with_random_weights ~seed g] — a copy of [g] in which every
    weight-bearing operator (conv / depthwise / transposed conv / matmul /
    constant) without parameter values gets a deterministic random int8
    weight tensor of the inferred shape.  Zoo graphs carry shapes only;
    this is what makes them runnable through {!Gcd2.Runtime} and
    {!Gcd2_kernels.Interp}. *)
val with_random_weights : ?seed:int -> Gcd2_graph.Graph.t -> Gcd2_graph.Graph.t
