(** Cross-process compile leases in the cache directory.

    The in-process {!Gcd2_daemon.Flight} table dedups concurrent
    compiles of one digest inside a single daemon; this module is its
    disk tier.  A would-be leader takes [<dir>/<digest>.lease] before a
    cold compile; leaders in {e other processes} see the lease, poll,
    and adopt the artifact the leader stores.  The lease file carries
    the owner pid and a wall-clock stamp:

    {v pid=<pid> stamp=<seconds-since-epoch> v}

    A lease is {e stale} when its owner pid is dead (the common case
    after a SIGKILL — detected immediately via [kill pid 0]) or its
    stamp is older than the ttl (the fallback bound for a wedged but
    living owner; live leaders {!refresh} the stamp well inside the
    ttl).  Unreadable or garbled lease files are stale outright:
    {!acquire} publishes the file atomically (write-then-[link]), so a
    garbled file can only come from corruption, never from catching a
    healthy writer mid-write.

    Breaking is rename-then-unlink: every breaker renames the lease to
    a name unique to itself and unlinks the corpse.  [rename] is atomic,
    so of N concurrent breakers exactly one wins and the losers see
    [ENOENT] — two breakers can never free the key twice, and a breaker
    that lost simply re-examines the key (a fresh leader may already
    hold a new lease, which the loser must not touch).

    Leases are an optimization (compile dedup), not a correctness
    gate: artifact stores are atomic temp-file+rename, so the worst
    consequence of the unavoidable check-then-break race (a lease going
    live again between [state] and [break]) is one duplicate compile
    producing bit-identical bytes.  What the module does guarantee:
    {!acquire} never admits two owners for one lease file, and a dead
    owner never wedges a key for longer than the ttl. *)

module Fault = Gcd2_util.Fault
module Trace = Gcd2_util.Trace

(* SIGKILLed owners are detected by pid, not stamp, so the ttl only
   bounds wedged-but-alive owners; 10 s is far above any refresh jitter
   yet short enough that a stuck leader delays followers, not users
   (their serve deadline caps the wait anyway). *)
let default_ttl_s = 10.0

let path ~dir digest = Filename.concat dir (digest ^ ".lease")

type t = { dir : string; digest : string; owner : int }

let owner t = t.owner
let lease_path t = path ~dir:t.dir t.digest

(* ------------------------------------------------------------------ *)
(* File format                                                         *)

let render ~owner = Printf.sprintf "pid=%d stamp=%.6f\n" owner (Unix.gettimeofday ())

let write_file path s =
  Out_channel.with_open_gen
    [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
    0o644 path
    (fun oc -> Out_channel.output_string oc s)

let read ~dir digest =
  match In_channel.with_open_bin (path ~dir digest) In_channel.input_all with
  | exception Sys_error _ -> None
  | s -> ( try Scanf.sscanf s "pid=%d stamp=%f" (fun pid stamp -> Some (pid, stamp)) with _ -> None)

(* [kill pid 0] probes liveness without signalling: ESRCH means no such
   process; EPERM means it exists but belongs to someone else (alive). *)
let pid_alive pid =
  if pid <= 0 then false
  else
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error (_, _, _) -> true

(* ------------------------------------------------------------------ *)
(* State machine: Free -> Held -> (release -> Free | stale -> Stale -> break -> Free) *)

type state =
  | Free
  | Held of int  (** live owner pid *)
  | Stale of int option  (** dead/expired owner; [None] when garbled *)

let state ?(ttl_s = default_ttl_s) ~dir digest =
  if not (Sys.file_exists (path ~dir digest)) then Free
  else
    match read ~dir digest with
    | None -> if Sys.file_exists (path ~dir digest) then Stale None else Free
    | Some (pid, stamp) ->
      if not (pid_alive pid) then Stale (Some pid)
      else if Unix.gettimeofday () -. stamp > ttl_s then Stale (Some pid)
      else Held pid

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)

(* Unique per owner AND per attempt: two threads of one process may
   race an acquire of the same digest. *)
let scratch_counter = Atomic.make 0

let scratch_path ~dir digest ~owner tag =
  Filename.concat dir
    (Printf.sprintf ".%s.%d.%d.%s" digest owner (Atomic.fetch_and_add scratch_counter 1) tag)

(** Try to take the lease for [digest].  [Ok lease] makes the caller
    the sole owner; [Error `Held] means some lease file exists (live or
    stale — callers consult {!state} and maybe {!break}); [Error (`Io
    msg)] is any filesystem failure, which callers treat as "leases
    unavailable, proceed without dedup".  The publish is atomic: the
    contents are written to a scratch file which is then [link]ed to
    the lease name, so a lease file, once visible, is always complete.
    [owner] defaults to the calling pid; tests pass other pids to model
    foreign processes.  Consults fault point [flight-lease]. *)
let acquire ?owner ~dir digest =
  Fault.fire "flight-lease";
  let owner = match owner with Some p -> p | None -> Unix.getpid () in
  Cache.ensure_dir dir;
  let tmp = scratch_path ~dir digest ~owner "lease-tmp" in
  match
    write_file tmp (render ~owner);
    Unix.link tmp (path ~dir digest)
  with
  | () ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Trace.count "lease-acquired" 1;
    Ok { dir; digest; owner }
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error `Held
  | exception Unix.Unix_error (e, _, _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (`Io (Unix.error_message e))
  | exception Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (`Io msg)

(** Re-stamp a held lease (heartbeat).  Returns false — and writes
    nothing — when the lease is no longer ours (broken and retaken),
    which tells the heartbeat to stop. *)
let refresh t =
  match read ~dir:t.dir t.digest with
  | Some (pid, _) when pid = t.owner -> (
    let tmp = scratch_path ~dir:t.dir t.digest ~owner:t.owner "lease-hb" in
    match
      write_file tmp (render ~owner:t.owner);
      Sys.rename tmp (lease_path t)
    with
    | () -> true
    | exception Sys_error _ ->
      (try Sys.remove tmp with Sys_error _ -> ());
      false)
  | _ -> false

(** Drop our lease.  Only removes the file while it is still ours. *)
let release t =
  match read ~dir:t.dir t.digest with
  | Some (pid, _) when pid = t.owner -> (
    try Sys.remove (lease_path t) with Sys_error _ -> ())
  | _ -> ()

(** Break the lease on [digest] (call only after {!state} returned
    [Stale _]).  Rename-then-unlink: exactly one of N concurrent
    breakers wins the atomic rename and removes the corpse; the losers
    return false and must re-examine the key.  Consults fault point
    [flight-lease]. *)
let break ?owner ~dir digest =
  Fault.fire "flight-lease";
  let owner = match owner with Some p -> p | None -> Unix.getpid () in
  let corpse = scratch_path ~dir digest ~owner "lease-broken" in
  match Sys.rename (path ~dir digest) corpse with
  | () ->
    (try Sys.remove corpse with Sys_error _ -> ());
    Trace.count "lease-broken" 1;
    true
  | exception Sys_error _ -> false
