(** The on-disk content-addressed compile cache.

    One file per request under the cache directory, named by the
    request's {!Fingerprint} digest: [<dir>/<digest>.gcd2art].  Lookups
    are infallible by design — {e any} problem with an entry (missing,
    truncated, bit-flipped, wrong format version, digest mismatch) is
    reported as a miss and the compiler falls back to a full compile,
    which then re-stores a fresh entry over the bad one.

    The default directory follows the XDG convention:
    [$GCD2_CACHE_DIR], else [$XDG_CACHE_HOME/gcd2], else
    [$HOME/.cache/gcd2], else a [gcd2] directory under the system temp
    directory for HOME-less environments. *)

module Trace = Gcd2_util.Trace
module Fault = Gcd2_util.Fault

let default_dir () =
  match Sys.getenv_opt "GCD2_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "gcd2"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "gcd2"
      | _ -> Filename.concat (Filename.get_temp_dir_name ()) "gcd2"))

let rec ensure_dir d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then ensure_dir parent;
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(** Path of the entry holding [digest]'s artifact. *)
let entry_path dir digest = Filename.concat dir (digest ^ ".gcd2art")

(** Where {!lookup} quarantines an entry it could not decode. *)
let quarantine_path path = path ^ ".bad"

(* ------------------------------------------------------------------ *)
(* Repeated-quarantine cap                                             *)

(* A persistently corrupting entry (bad disk sector, hostile mount)
   would otherwise loop forever: quarantine -> recompile -> store ->
   corrupt again -> quarantine...  Each serving process counts
   {e consecutive} quarantines per (directory, digest); at the cap the
   entry is "poisoned" and {!store} suppresses its rewrites, so the
   digest serves uncached instead of burning a store+quarantine cycle
   per request.  Two escape hatches keep the cap from outliving a
   {e transient} fault burst (the chaos invariant: behaviour always
   converges back once faults stop): a healthy decoded hit resets the
   count, and while poisoned every [probe_every]-th store goes through
   as a probe — if the medium recovered, the probe's entry hits, which
   resets the count.  State is per-process by design (a restart retries
   the entry once); growth of the [.bad] files themselves is bounded by
   the janitor's age-out. *)
let quarantine_cap = 3
let probe_every = 8

type pstate = { mutable quarantines : int; mutable suppressed : int }

let poison_mu = Mutex.create ()
let poison : (string, pstate) Hashtbl.t = Hashtbl.create 16
let pkey ~dir digest = dir ^ "\x00" ^ digest

let quarantine_count ~dir digest =
  Mutex.protect poison_mu (fun () ->
      match Hashtbl.find_opt poison (pkey ~dir digest) with
      | Some st -> st.quarantines
      | None -> 0)

let poisoned ~dir digest = quarantine_count ~dir digest >= quarantine_cap

(** Forget all per-process quarantine counts (tests). *)
let reset_poison () = Mutex.protect poison_mu (fun () -> Hashtbl.reset poison)

let note_quarantine ~dir digest =
  Mutex.protect poison_mu (fun () ->
      let key = pkey ~dir digest in
      match Hashtbl.find_opt poison key with
      | Some st -> st.quarantines <- st.quarantines + 1
      | None -> Hashtbl.add poison key { quarantines = 1; suppressed = 0 })

let note_healthy ~dir digest =
  Mutex.protect poison_mu (fun () -> Hashtbl.remove poison (pkey ~dir digest))

(* Store gate: true = write the entry.  Under the cap always; past it
   only for the periodic probe. *)
let store_allowed ~dir digest =
  Mutex.protect poison_mu (fun () ->
      match Hashtbl.find_opt poison (pkey ~dir digest) with
      | None -> true
      | Some st when st.quarantines < quarantine_cap -> true
      | Some st ->
        st.suppressed <- st.suppressed + 1;
        st.suppressed mod probe_every = 0)

(* An undecodable entry is moved aside — never deleted — so a future
   lookup recompiles instead of re-failing on the same bytes, while the
   poisoned file stays on disk for post-mortem (the janitor ages it out
   eventually).  A rename failure (say, a read-only cache directory)
   leaves the entry in place: still a miss, never an error. *)
let quarantine ~dir ~digest path =
  (try Sys.rename path (quarantine_path path) with Sys_error _ -> ());
  note_quarantine ~dir digest;
  Trace.count "cache-quarantined" 1

(** Look up an artifact; [Some (artifact, bytes_read)] on a verified hit,
    [None] on a miss for any reason.  An entry that exists but does not
    decode is quarantined to [<entry>.bad] (counter [cache-quarantined])
    so the recompile's fresh store self-heals the cache. *)
let lookup ~dir digest =
  Fault.fire "cache-read";
  let path = entry_path dir digest in
  if not (Sys.file_exists path) then None
  else
    match Artifact.load ~expect_digest:digest ~path () with
    | Ok (art, bytes) ->
      note_healthy ~dir digest;
      Some (art, bytes)
    | Error _ ->
      quarantine ~dir ~digest path;
      None

(** Store an artifact under its digest; returns the bytes written.
    Creates the cache directory (and parents) as needed.  A digest past
    the repeated-quarantine cap is mostly not rewritten (counter
    [cache-store-suppressed], returns 0): the entry keeps failing on
    this medium, so the process serves it uncached rather than loop
    quarantine -> store -> quarantine — except for the periodic probe
    store that lets a recovered medium heal the entry. *)
let store ~dir (art : Artifact.t) =
  if not (store_allowed ~dir art.Artifact.digest) then begin
    Trace.count "cache-store-suppressed" 1;
    0
  end
  else begin
    ensure_dir dir;
    Artifact.save ~path:(entry_path dir art.Artifact.digest) art
  end
