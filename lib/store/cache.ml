(** The on-disk content-addressed compile cache.

    One file per request under the cache directory, named by the
    request's {!Fingerprint} digest: [<dir>/<digest>.gcd2art].  Lookups
    are infallible by design — {e any} problem with an entry (missing,
    truncated, bit-flipped, wrong format version, digest mismatch) is
    reported as a miss and the compiler falls back to a full compile,
    which then re-stores a fresh entry over the bad one.

    The default directory follows the XDG convention:
    [$GCD2_CACHE_DIR], else [$XDG_CACHE_HOME/gcd2], else
    [$HOME/.cache/gcd2], else a [gcd2] directory under the system temp
    directory for HOME-less environments. *)

module Trace = Gcd2_util.Trace
module Fault = Gcd2_util.Fault

let default_dir () =
  match Sys.getenv_opt "GCD2_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "gcd2"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "gcd2"
      | _ -> Filename.concat (Filename.get_temp_dir_name ()) "gcd2"))

let rec ensure_dir d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then ensure_dir parent;
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(** Path of the entry holding [digest]'s artifact. *)
let entry_path dir digest = Filename.concat dir (digest ^ ".gcd2art")

(** Where {!lookup} quarantines an entry it could not decode. *)
let quarantine_path path = path ^ ".bad"

(* An undecodable entry is moved aside — never deleted — so a future
   lookup recompiles instead of re-failing on the same bytes, while the
   poisoned file stays on disk for post-mortem.  A rename failure (say,
   a read-only cache directory) leaves the entry in place: still a
   miss, never an error. *)
let quarantine path =
  (try Sys.rename path (quarantine_path path) with Sys_error _ -> ());
  Trace.count "cache-quarantined" 1

(** Look up an artifact; [Some (artifact, bytes_read)] on a verified hit,
    [None] on a miss for any reason.  An entry that exists but does not
    decode is quarantined to [<entry>.bad] (counter [cache-quarantined])
    so the recompile's fresh store self-heals the cache. *)
let lookup ~dir digest =
  Fault.fire "cache-read";
  let path = entry_path dir digest in
  if not (Sys.file_exists path) then None
  else
    match Artifact.load ~expect_digest:digest ~path () with
    | Ok (art, bytes) -> Some (art, bytes)
    | Error _ ->
      quarantine path;
      None

(** Store an artifact under its digest; returns the bytes written.
    Creates the cache directory (and parents) as needed. *)
let store ~dir (art : Artifact.t) =
  ensure_dir dir;
  Artifact.save ~path:(entry_path dir art.Artifact.digest) art
