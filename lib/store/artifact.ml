(** Versioned, checksummed binary serialization of compile artifacts.

    An artifact is everything the compiler produces for one request: the
    optimized graph, the enumerated plan tables, the globally selected
    assignment with its objective value, the latency report, and the
    packed VLIW program of every node the plan runs on the SIMD unit.
    Loading an artifact and handing it back to {!Gcd2.Compiler} must be
    indistinguishable from recompiling — the cost tables are rebuilt from
    the stored plans, so no closure ever crosses the serialization
    boundary.

    On-disk layout (all integers big-endian):

    {v
      offset  size  field
      0       8     magic   "GCD2ART\n"
      8       4     version word (format version mixed with the digest
                    of the payload [layout] description)
      12      32    request digest, lowercase hex (Fingerprint.request)
      44      16    raw MD5 of the payload
      60      8     payload length in bytes
      68      n     payload: Marshal of the artifact record
    v}

    Readers reject (and the cache treats as a miss) anything whose magic,
    version word, digest, length or checksum does not match — a truncated
    or bit-flipped file can never surface as a wrong answer, only as a
    recompile. *)

module Graph = Gcd2_graph.Graph
module Plan = Gcd2_cost.Plan
module Graphcost = Gcd2_cost.Graphcost
module Opcost = Gcd2_cost.Opcost
module Matmul = Gcd2_codegen.Matmul
module Program = Gcd2_isa.Program

type t = {
  digest : string;  (** content-address of the request (hex) *)
  graph : Graph.t;  (** graph after the optimization passes *)
  plans : Plan.t array array;  (** enumerated execution plans per node *)
  assignment : int array;  (** chosen plan index per node *)
  objective : float;  (** solver objective of the assignment *)
  report : Graphcost.report;
  programs : Program.t option array;
      (** packed VLIW program of each node's chosen plan, for the nodes
          lowered to the SIMD unit *)
  selection_seconds : float;  (** wall time the original global selection took *)
}

let version = 2
let magic = "GCD2ART\n"

(* The payload is decoded with [Marshal.from_bytes], which is not
   type-safe: an entry whose marshaled type layout changed since it was
   written would pass every structural check and decode into garbage (or
   segfault).  [layout] names every type the payload transitively
   marshals; each of those definitions carries a comment pointing back
   here, and ANY change to one of them must be accompanied by an edit to
   this string (or a [version] bump).  The 4-byte version word written to
   disk is derived from the digest of both, so stale-layout entries are
   rejected as a version mismatch instead of being decoded. *)
let layout =
  "graph=Gcd2_graph.Graph.t(Op.t,Tensor.t,Quant.t);\
   plans=Gcd2_cost.Plan.t(Layout.t,Simd.t,Unroll.t{un,ug,abuf,wbuf}) array array;\
   assignment=int array;objective=float;\
   report=Gcd2_cost.Graphcost.report;\
   programs=Gcd2_isa.Program.t(Packet.t,Instr.t) option array;\
   selection_seconds=float"

let version_word =
  Bytes.get_int32_be
    (Bytes.unsafe_of_string (Stdlib.Digest.string (Printf.sprintf "%d:%s" version layout)))
    0
let digest_hex_len = 32
let header_len = 8 + 4 + digest_hex_len + 16 + 8

(** Packed programs of the chosen assignment: one generated kernel per
    node whose selected plan runs on the SIMD unit. *)
let programs_of ~options (g : Graph.t) plans assignment =
  Array.init (Graph.size g) (fun v ->
      let node = Graph.node g v in
      let plan = plans.(v).(assignment.(v)) in
      match Opcost.plan_spec options g node plan with
      | Some spec ->
        Some (Matmul.generate spec { Matmul.a_base = 0; w_base = 0; c_base = 0 })
      | None -> None)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let to_bytes t =
  let payload =
    Marshal.to_bytes
      ( t.graph,
        t.plans,
        t.assignment,
        t.objective,
        t.report,
        t.programs,
        t.selection_seconds )
      []
  in
  if String.length t.digest <> digest_hex_len then
    invalid_arg "Artifact.to_bytes: digest must be 32 hex chars";
  let b = Bytes.create (header_len + Bytes.length payload) in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int32_be b 8 version_word;
  Bytes.blit_string t.digest 0 b 12 digest_hex_len;
  Bytes.blit_string (Stdlib.Digest.bytes payload) 0 b 44 16;
  Bytes.set_int64_be b 60 (Int64.of_int (Bytes.length payload));
  Bytes.blit payload 0 b header_len (Bytes.length payload);
  b

(* ------------------------------------------------------------------ *)
(* Decoding — every failure is an [Error reason], never an exception.   *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check cond reason = if cond then Ok () else Error reason

let of_bytes ?expect_digest b =
  let* () = check (Bytes.length b >= header_len) "too short for header" in
  let* () = check (Bytes.sub_string b 0 8 = magic) "bad magic" in
  let* () = check (Bytes.get_int32_be b 8 = version_word) "format version mismatch" in
  let digest = Bytes.sub_string b 12 digest_hex_len in
  let* () =
    match expect_digest with
    | Some d -> check (d = digest) "request digest mismatch"
    | None -> Ok ()
  in
  let len = Int64.to_int (Bytes.get_int64_be b 60) in
  let* () = check (len >= 0 && Bytes.length b = header_len + len) "length mismatch" in
  let payload = Bytes.sub b header_len len in
  let* () =
    check (Stdlib.Digest.bytes payload = Bytes.sub_string b 44 16) "payload checksum mismatch"
  in
  match Marshal.from_bytes payload 0 with
  | graph, plans, assignment, objective, report, programs, selection_seconds ->
    let t =
      { digest; graph; plans; assignment; objective; report; programs; selection_seconds }
    in
    let* () =
      check
        (Graph.size graph = Array.length plans
        && Graph.size graph = Array.length assignment
        && Graph.size graph = Array.length programs)
        "inconsistent artifact shape"
    in
    Ok t
  | exception _ -> Error "undecodable payload"

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

(** Write atomically (temp file + rename) so that a concurrent reader
    never observes a torn entry.  Returns the bytes written.  On any
    failure — including an injected [cache-write] fault between the
    write and the rename — the temp file is removed before the
    exception propagates, so a failing store never litters the cache
    directory with [.tmp] debris. *)
let save ~path t =
  let b = to_bytes t in
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) "gcd2art" ".tmp" in
  match
    let oc = Out_channel.open_bin tmp in
    Fun.protect
      ~finally:(fun () -> Out_channel.close oc)
      (fun () -> Out_channel.output_bytes oc b);
    Gcd2_util.Fault.fire "cache-write";
    Sys.rename tmp path
  with
  | () -> Bytes.length b
  | exception exn ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise exn

(** Read and verify an artifact file.  [Ok (artifact, bytes_read)] on
    success; {e any} failure to open, read or decode — the path is a
    directory, the device errors mid-read, the payload is damaged — is
    an [Error], never an exception, so {!Cache.lookup} can keep its
    "every problem is a miss" contract. *)
let load ?expect_digest ~path () =
  match
    let ic = In_channel.open_bin path in
    Fun.protect
      ~finally:(fun () -> In_channel.close ic)
      (fun () -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | exception exn -> Error (Printexc.to_string exn)
  | b ->
    (* [artifact-decode] fault: one flipped bit in the bytes just read,
       as silent media corruption would leave them.  The structural
       checks of [of_bytes] must turn it into an [Error] — never a
       wrong artifact — and the cache then quarantines the entry. *)
    let bytes = Gcd2_util.Fault.corrupt "artifact-decode" (Bytes.unsafe_of_string b) in
    let* t = of_bytes ?expect_digest bytes in
    Ok (t, String.length b)
