(** Content-addressing of compile requests.

    A compile request is the triple (computational graph, compiler
    configuration, disabled passes): if two requests render to the same
    canonical byte string, the compiler is guaranteed to produce the
    same artifact, so the cache may answer the second from the first's
    stored result.

    The graph rendered here must be the graph the expensive phases (plan
    enumeration, global selection) actually consume — i.e. the graph
    {e after} the optimization passes have run, which is where
    {!Gcd2.Compiler} computes the digest.  This matters for the one
    non-printable knob, the [supported] predicate, which is canonicalized
    {e extensionally}: it is evaluated on each node and rendered as a
    bitmap.  Over the optimized graph that bitmap covers exactly the op
    universe selection sees — including fused/rewritten ops that do not
    exist in the user's input graph — so two configurations whose
    predicates agree on every rendered op compile identically.

    The rest of the rendering is exhaustive over everything else that
    can change the compiler's output — every operator attribute
    (including the ones {!Gcd2_graph.Op.name} elides, e.g. convolution
    padding and reshape shapes), weight contents, every costing knob of
    {!Gcd2_cost.Opcost.options}, and the sorted list of disabled pass
    names (an ablated compile must never share an entry with a full
    one).  The cosmetic configuration [name] is deliberately excluded,
    so "GCD2" and "gcd2" share entries.

    The digest is the MD5 of the canonical rendering, in lowercase hex —
    the cache's file name and the artifact header's request id. *)

module Graph = Gcd2_graph.Graph
module Op = Gcd2_graph.Op
module Opcost = Gcd2_cost.Opcost
module Packer = Gcd2_sched.Packer
module Layout = Gcd2_tensor.Layout
module Simd = Gcd2_codegen.Simd
module T = Gcd2_tensor.Tensor

let add = Buffer.add_string

let add_dims buf dims =
  add buf "[";
  Array.iter (fun d -> add buf (string_of_int d); add buf ",") dims;
  add buf "]"

(* Floats are rendered in hex so the canonical form is exact, not
   rounded. *)
let add_float buf f = add buf (Printf.sprintf "%h" f)

let add_act buf = function
  | None -> add buf "-"
  | Some a -> add buf (Op.act_name a)

(* Exhaustive over every attribute of every operator: unlike [Op.name]
   (display-oriented), nothing that changes compilation may be elided. *)
let add_op buf (op : Op.t) =
  match op with
  | Op.Input { shape } ->
    add buf "input";
    add_dims buf shape
  | Op.Constant { shape } ->
    add buf "const";
    add_dims buf shape
  | Op.Conv2d { kh; kw; stride; pad; cout; act } ->
    add buf (Printf.sprintf "conv2d:%d:%d:%d:%d:%d:" kh kw stride pad cout);
    add_act buf act
  | Op.Depthwise_conv2d { kh; kw; stride; pad; act } ->
    add buf (Printf.sprintf "dwconv:%d:%d:%d:%d:" kh kw stride pad);
    add_act buf act
  | Op.Transposed_conv2d { kh; kw; stride; pad; cout; act } ->
    add buf (Printf.sprintf "tconv:%d:%d:%d:%d:%d:" kh kw stride pad cout);
    add_act buf act
  | Op.Matmul { cout; act } ->
    add buf (Printf.sprintf "matmul:%d:" cout);
    add_act buf act
  | Op.Batch_matmul { transpose_b } ->
    add buf (if transpose_b then "bmm:t" else "bmm:n")
  | Op.Add -> add buf "add"
  | Op.Mul -> add buf "mul"
  | Op.Sub -> add buf "sub"
  | Op.Div -> add buf "div"
  | Op.Pow p ->
    add buf "pow:";
    add_float buf p
  | Op.Relu -> add buf "relu"
  | Op.Relu6 -> add buf "relu6"
  | Op.Hard_swish -> add buf "hswish"
  | Op.Sigmoid -> add buf "sigmoid"
  | Op.Tanh -> add buf "tanh"
  | Op.Gelu -> add buf "gelu"
  | Op.Softmax -> add buf "softmax"
  | Op.Layer_norm -> add buf "layer_norm"
  | Op.Max_pool { kernel; stride } -> add buf (Printf.sprintf "maxpool:%d:%d" kernel stride)
  | Op.Avg_pool { kernel; stride } -> add buf (Printf.sprintf "avgpool:%d:%d" kernel stride)
  | Op.Global_avg_pool -> add buf "gap"
  | Op.Reshape { shape } ->
    add buf "reshape";
    add_dims buf shape
  | Op.Transpose { perm } ->
    add buf "transpose";
    add_dims buf perm
  | Op.Concat { axis } -> add buf (Printf.sprintf "concat:%d" axis)
  | Op.Pad_spatial { pad } -> add buf (Printf.sprintf "pad:%d" pad)
  | Op.Upsample { factor } -> add buf (Printf.sprintf "upsample:%d" factor)

let add_weight buf = function
  | None -> add buf "w:-"
  | Some (w : T.t) ->
    (* Digest the raw parameter values; artifacts embed them, so two
       graphs differing only in weights are different requests. *)
    add buf "w:";
    add buf
      (Stdlib.Digest.to_hex
         (Stdlib.Digest.string (Marshal.to_string (w.T.dims, w.T.data, w.T.quant) [])))

let add_graph buf (g : Graph.t) =
  Graph.iter
    (fun node ->
      add buf (string_of_int node.Graph.id);
      add buf ":";
      add_op buf node.Graph.op;
      add buf "<-";
      List.iter
        (fun i ->
          add buf (string_of_int i);
          add buf ",")
        node.Graph.inputs;
      add buf "=>";
      add_dims buf node.Graph.out_shape;
      add buf ";";
      add_weight buf node.Graph.weight;
      add buf "\n")
    g

let add_unroll_mode buf (m : Opcost.unroll_mode) =
  match m with
  | `None -> add buf "none"
  | `Out f -> add buf (Printf.sprintf "out:%d" f)
  | `Mid f -> add buf (Printf.sprintf "mid:%d" f)
  | `Adaptive -> add buf "adaptive"
  | `Exhaustive -> add buf "exhaustive"

let add_tune buf = function
  | None -> add buf "-"
  | Some (t : Gcd2_codegen.Autotune.config) ->
    add buf (Printf.sprintf "budget:%d:verify:%b" t.Gcd2_codegen.Autotune.budget t.Gcd2_codegen.Autotune.verify)

let add_options buf (g : Graph.t) (o : Opcost.options) =
  (* the full device descriptor, not just its name: a retuned descriptor
     under the same name must never resurrect a stale artifact *)
  add buf "device=";
  add buf (Gcd2_devices.Desc.canonical o.Opcost.device);
  add buf ";strategy=";
  add buf (Fmt.str "%a" Packer.pp_strategy o.Opcost.strategy);
  add buf ";unroll=";
  add_unroll_mode buf o.Opcost.unroll_mode;
  (* tuned and untuned compiles must never alias, and neither must two
     different budgets (a bigger budget may find a better kernel) *)
  add buf ";tune=";
  add_tune buf o.Opcost.tune;
  add buf ";eltwise_uv=";
  add buf (Fmt.str "%a" Gcd2_cost.Streams.pp_uv_choice o.Opcost.eltwise_uv);
  add buf ";layouts=";
  List.iter
    (fun l ->
      add buf (Layout.name l);
      add buf ",")
    o.Opcost.layouts;
  add buf ";simds=";
  List.iter
    (fun s ->
      add buf (Simd.name s);
      add buf ",")
    o.Opcost.simds;
  add buf (Printf.sprintf ";lut_division=%b" o.Opcost.lut_division);
  add buf (Printf.sprintf ";attn_kernels=%b" o.Opcost.attn_kernels);
  add buf ";dispatch_us=";
  add_float buf o.Opcost.dispatch_us;
  add buf (Printf.sprintf ";channel_pad=%d" o.Opcost.channel_pad);
  (* extensional rendering of the [supported] predicate over this graph *)
  add buf ";supported=";
  Graph.iter (fun node -> add buf (if o.Opcost.supported node.Graph.op then "1" else "0")) g

(** Canonical rendering of a compile request.  [selection] is the
    rendered selection strategy (e.g. ["gcd2(13)"]); [disable] is the
    list of disabled pass names (rendered sorted and deduplicated, so
    callers need not normalize); the graph is the one the selection
    phases consume, {e after} the optimization passes that [disable]
    left enabled. *)
let canonical ~selection ~optimize_graph ~disable ~options (g : Graph.t) =
  let buf = Buffer.create 4096 in
  (* v5: the request gained the transformer-kernel knob ([attn_kernels])
     and sequence models arrive as bucket-padded graphs (v4 added the
     autotuner configuration and the eltwise unroll policy, v3 the
     device descriptor) *)
  add buf "gcd2-request-v5\n";
  add buf "selection=";
  add buf selection;
  add buf (Printf.sprintf ";optimize_graph=%b" optimize_graph);
  add buf ";disable=[";
  List.iter
    (fun n ->
      add buf n;
      add buf ",")
    (List.sort_uniq String.compare disable);
  add buf "];";
  add_options buf g options;
  add buf "\n";
  add_graph buf g;
  Buffer.contents buf

(** Content-address of a compile request: lowercase-hex MD5 of the
    canonical rendering. *)
let request ~selection ~optimize_graph ~disable ~options (g : Graph.t) =
  Stdlib.Digest.to_hex
    (Stdlib.Digest.string (canonical ~selection ~optimize_graph ~disable ~options g))
