(** Cache-directory janitor: sweep debris, age quarantine, bound size.

    The store's crash-safety story leaves three kinds of residue that
    nothing else reclaims: [.tmp] scratch files from writers killed
    between temp-write and rename, [.bad] quarantine files parked by
    {!Cache.lookup} for post-mortem, and [.lease] files from leaders
    that died without releasing (see {!Lease}).  Left alone the
    directory grows without bound; the janitor runs at daemon startup
    and periodically to converge it back to a clean, bounded state:

    - {b tmp debris} older than [tmp_max_age_s] is unlinked — the age
      gate means a live writer's in-flight temp file is never touched;
    - {b quarantine} files older than [bad_max_age_s] are unlinked —
      long enough for post-mortem, short enough that a corrupting
      workload cannot fill the disk;
    - {b stale leases} (dead pid or expired stamp) are broken via
      {!Lease.break}, so even an idle key (no follower polling it) is
      eventually freed;
    - {b entries} are LRU-evicted by mtime until total entry bytes fit
      [max_bytes], {e never} evicting a digest whose lease is live — a
      leader mid-publish (or a follower mid-adopt) must not have the
      artifact swept out from under it.

    Every action is a structured counter in the returned {!report} and
    a {!Gcd2_util.Trace} counter ([janitor-*]).  A sweep never raises:
    each unlink consults fault point [janitor-unlink] and any failure
    (injected or real, e.g. a concurrent sweep won the race) is counted
    in [errors] and skipped. *)

module Fault = Gcd2_util.Fault
module Trace = Gcd2_util.Trace

type config = {
  max_bytes : int option;  (** entry-bytes budget; [None] = unbounded *)
  tmp_max_age_s : float;
  bad_max_age_s : float;
  lease_ttl_s : float;
}

let default =
  {
    max_bytes = None;
    tmp_max_age_s = 600.0;
    bad_max_age_s = 86_400.0;
    lease_ttl_s = Lease.default_ttl_s;
  }

type report = {
  entries : int;  (** surviving entries *)
  bytes : int;  (** their total size *)
  tmp_removed : int;
  bad_removed : int;
  leases_broken : int;
  evicted : int;
  evicted_bytes : int;
  skipped_leased : int;  (** eviction candidates protected by a live lease *)
  errors : int;
}

let report_line r =
  Printf.sprintf
    "janitor: entries=%d bytes=%d tmp_removed=%d bad_removed=%d leases_broken=%d evicted=%d \
     evicted_bytes=%d skipped_leased=%d errors=%d"
    r.entries r.bytes r.tmp_removed r.bad_removed r.leases_broken r.evicted r.evicted_bytes
    r.skipped_leased r.errors

(* ------------------------------------------------------------------ *)

type kind = Entry | Tmp | Bad | Lease_file | Other

let classify name =
  if Filename.check_suffix name ".gcd2art" then Entry
  else if Filename.check_suffix name ".bad" then Bad
  else if Filename.check_suffix name ".lease" then Lease_file
  else if
    Filename.check_suffix name ".tmp"
    || Filename.check_suffix name ".lease-tmp"
    || Filename.check_suffix name ".lease-hb"
    || Filename.check_suffix name ".lease-broken"
  then Tmp
  else Other

let digest_of_entry name = Filename.chop_suffix name ".gcd2art"
let digest_of_lease name = Filename.chop_suffix name ".lease"

(* One unlink, one [janitor-unlink] consult; false (and no raise) on
   any failure, injected or real. *)
let unlink path =
  match
    Fault.fire "janitor-unlink";
    Sys.remove path
  with
  | () -> true
  | exception _ -> false

let sweep ~dir config =
  let now = Unix.gettimeofday () in
  let tmp_removed = ref 0
  and bad_removed = ref 0
  and leases_broken = ref 0
  and evicted = ref 0
  and evicted_bytes = ref 0
  and skipped_leased = ref 0
  and errors = ref 0 in
  let names = match Sys.readdir dir with x -> x | exception Sys_error _ -> [||] in
  let age st = now -. st.Unix.st_mtime in
  let stat path = match Unix.stat path with st -> Some st | exception Unix.Unix_error _ -> None in
  let remove counter path =
    if unlink path then incr counter else incr errors
  in
  (* Pass 1: debris, quarantine age-out, stale-lease breaking; collect
     surviving entries and live-leased digests along the way. *)
  let entries = ref [] in
  let leased = Hashtbl.create 8 in
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      match classify name with
      | Other -> ()
      | Tmp -> (
        match stat path with
        | Some st when age st > config.tmp_max_age_s -> remove tmp_removed path
        | _ -> ())
      | Bad -> (
        match stat path with
        | Some st when age st > config.bad_max_age_s -> remove bad_removed path
        | _ -> ())
      | Lease_file -> (
        let digest = digest_of_lease name in
        match Lease.state ~ttl_s:config.lease_ttl_s ~dir digest with
        | Lease.Stale _ -> (
          match Lease.break ~dir digest with
          | true -> incr leases_broken
          | false -> ()
          | exception _ -> incr errors)
        | Lease.Held _ -> Hashtbl.replace leased digest ()
        | Lease.Free -> ())
      | Entry -> (
        match stat path with
        | Some st -> entries := (path, digest_of_entry name, st) :: !entries
        | None -> ()))
    names;
  (* Pass 2: LRU eviction down to the byte budget, oldest mtime first,
     live-leased digests immune. *)
  let total = List.fold_left (fun acc (_, _, st) -> acc + st.Unix.st_size) 0 !entries in
  let entries = ref !entries and bytes = ref total in
  (match config.max_bytes with
  | None -> ()
  | Some budget ->
    let by_age =
      List.sort (fun (_, _, a) (_, _, b) -> Float.compare a.Unix.st_mtime b.Unix.st_mtime) !entries
    in
    let keep = ref [] in
    List.iter
      (fun ((path, digest, st) as e) ->
        if !bytes > budget then
          if Hashtbl.mem leased digest then begin
            incr skipped_leased;
            keep := e :: !keep
          end
          else if unlink path then begin
            incr evicted;
            evicted_bytes := !evicted_bytes + st.Unix.st_size;
            bytes := !bytes - st.Unix.st_size
          end
          else begin
            incr errors;
            keep := e :: !keep
          end
        else keep := e :: !keep)
      by_age;
    entries := !keep);
  Trace.count "janitor-tmp-removed" !tmp_removed;
  Trace.count "janitor-bad-removed" !bad_removed;
  Trace.count "janitor-leases-broken" !leases_broken;
  Trace.count "janitor-evicted" !evicted;
  Trace.count "janitor-errors" !errors;
  {
    entries = List.length !entries;
    bytes = !bytes;
    tmp_removed = !tmp_removed;
    bad_removed = !bad_removed;
    leases_broken = !leases_broken;
    evicted = !evicted;
    evicted_bytes = !evicted_bytes;
    skipped_leased = !skipped_leased;
    errors = !errors;
  }
