(** Analytic device models for the context tables (paper Tables I and V,
    Figure 13).

    These are {e not} part of the contribution — the paper uses them only
    to situate the DSP results against mobile CPU/GPU and embedded
    accelerators — so they are deliberately simple: a throughput +
    per-operator dispatch-overhead latency model whose efficiencies are
    fitted to the paper's own Table I measurements, and an idle + busy
    power model.  DESIGN.md documents this substitution. *)

(** The analytic paper-context models, segregated so {!Desc} owns the
    device namespace. *)
module Context = struct

  (* ------------------------------------------------------------------ *)
  (* Mobile CPU / GPU latency (Table I's comparison points)              *)

  type xpu = {
    name : string;
    effective_gops : float;  (** sustained int8/fp16 ops per second, large kernels *)
    dispatch_ms : float;  (** per-operator framework overhead *)
    efficiency : float -> float;
        (** model-size-dependent derating (small models underutilize wide
            engines) *)
  }

  let cpu =
    {
      name = "CPU (int8)";
      effective_gops = 95.0;
      dispatch_ms = 0.10;
      (* small graphs cannot keep 8 asymmetric cores busy *)
      efficiency = (fun gmacs -> Float.min 1.0 (0.25 +. (0.18 *. Float.max 0.0 (log10 (gmacs *. 10.0)))));
    }

  let gpu =
    {
      name = "GPU (fp16)";
      effective_gops = 420.0;
      dispatch_ms = 0.035;
      efficiency = (fun gmacs -> Float.min 1.0 (0.35 +. (0.16 *. Float.max 0.0 (log10 (gmacs *. 10.0)))));
    }

  (** Latency of a model on a CPU/GPU-style device. *)
  let xpu_latency_ms d ~gmacs ~ops =
    let throughput = d.effective_gops *. 1e9 *. d.efficiency gmacs in
    (2.0 *. gmacs *. 1e9 /. throughput *. 1e3) +. (d.dispatch_ms *. float_of_int ops)

  (* ------------------------------------------------------------------ *)
  (* Power models (Figure 13, Tables I and V)                            *)

  (** DSP package power: idle rail plus utilization-scaled dynamic power.
      Better-utilized implementations draw slightly more power but finish
      far sooner, which is why GCD2 wins on energy (frames/Watt) while
      drawing ~7% more than TFLite/SNPE (paper Section V-D). *)
  let dsp_power_w ~utilization = 1.1 +. (2.2 *. utilization)

  (** Mobile GPU power grows with sustained occupancy (bigger models keep
      the ALUs lit): the paper reports 2.1 W (EfficientNet) to 3.8 W
      (CycleGAN). *)
  let gpu_power_w ~gmacs = 2.9 +. (0.9 *. Float.min 1.0 (gmacs /. 186.0))

  (* whole-cluster burn of saturated big cores; small models spin the
     cores hardest relative to useful work *)
  let cpu_power_w ~gmacs = 12.0 +. (10.0 *. exp (-.gmacs /. 0.6))

  (* ------------------------------------------------------------------ *)
  (* Embedded accelerators (Table V): published operating points          *)

  type accelerator = { name : string; dtype : string; fps : float; power_w : float }

  let edgetpu = { name = "EdgeTPU"; dtype = "int8"; fps = 17.8; power_w = 2.0 }
  let jetson_fp16 = { name = "Jetson Xavier"; dtype = "fp16"; fps = 291.0; power_w = 30.0 }
  let jetson_int8 = { name = "Jetson Xavier"; dtype = "int8"; fps = 1100.0; power_w = 30.0 }

  let fpw a = a.fps /. a.power_w

  (** Frames per second and frames per Watt of a DSP solution. *)
  let dsp_fps ~latency_ms = 1000.0 /. latency_ms

  let dsp_fpw ~latency_ms ~utilization =
    dsp_fps ~latency_ms /. dsp_power_w ~utilization

  (** Energy per inference in millijoules. *)
  let energy_mj ~latency_ms ~power_w = latency_ms *. power_w
end
