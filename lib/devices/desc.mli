(** First-class machine descriptions (see the implementation's module
    documentation for the design contract and the fixed instruction-class
    order of the per-class arrays). *)

type t = {
  name : string;
  slot_count : int;  (** packet capacity: instructions issued per cycle *)
  slot_masks : int array;
      (** per instruction class, in the order
          [salu, smul, ld, st, valu, vmpy, vmpy+, vshift, vperm]
          (mirrored by [Gcd2_isa.Iclass.index]): bit [s] set iff slot [s]
          is allowed *)
  latencies : int array;  (** per class, same order: issue-to-writeback cycles *)
  vector_bytes : int;  (** HVX vector register width *)
  vector_count : int;  (** vector register file size *)
  scalar_count : int;  (** scalar register file size *)
  vtcm_bytes : int;  (** tightly-coupled vector memory capacity *)
  ddr_bytes_per_cycle : float;  (** sustained DDR bandwidth *)
  gather_bytes_per_cycle : float;  (** TCM/L2 staging bandwidth *)
  model_cycles_per_sec : float;  (** model-cycle → wall-clock calibration *)
}

val iclass_count : int

(** The paper's Hexagon-698 cDSP — the default device everywhere; its
    fields equal the historical global constants exactly. *)
val hexagon698 : t

(** A hypothetical wider-HVX successor: 2× vector width, a fifth
    vector-capable issue slot, 2× DDR and gather bandwidth. *)
val hexagon_g2 : t

val builtins : t list
val names : string list

(** Case-insensitive lookup among {!builtins}. *)
val find : string -> t option

(** Like {!find}; raises [Invalid_argument] with the known names when
    unknown. *)
val get : string -> t

(** [$GCD2_DEVICE] when set (unknown value raises), {!hexagon698}
    otherwise.  Entry points (CLI, serve, bench) resolve their default
    device through this; library defaults pin {!hexagon698}. *)
val default : unit -> t

(** Raises [Invalid_argument] on an inconsistent descriptor. *)
val validate : t -> unit

val equal : t -> t -> bool

(** Exact canonical rendering of every field (floats in hex) — the form
    {!Gcd2_store.Fingerprint} folds into request digests. *)
val canonical : t -> string

(** Lowercase-hex MD5 of {!canonical}. *)
val digest : t -> string

val ms_of_cycles : t -> float -> float
val cycles_of_us : t -> float -> float
val cycles_of_ms : t -> float -> float
val pp : Format.formatter -> t -> unit
