(** Analytic device models for the context tables (paper Tables I and V,
    Figure 13) — throughput + dispatch latency models fitted to the
    paper's own measurements, and idle + busy power models.  Not part of
    the contribution; see DESIGN.md. *)

module Context : sig

  type xpu = {
    name : string;
    effective_gops : float;
    dispatch_ms : float;  (** per-operator framework overhead *)
    efficiency : float -> float;  (** model-size derating *)
  }

  val cpu : xpu
  val gpu : xpu

  val xpu_latency_ms : xpu -> gmacs:float -> ops:int -> float

  (** DSP package power: idle rail + utilization-scaled dynamic power. *)
  val dsp_power_w : utilization:float -> float

  val gpu_power_w : gmacs:float -> float
  val cpu_power_w : gmacs:float -> float

  type accelerator = { name : string; dtype : string; fps : float; power_w : float }

  val edgetpu : accelerator
  val jetson_fp16 : accelerator
  val jetson_int8 : accelerator
  val fpw : accelerator -> float

  val dsp_fps : latency_ms:float -> float
  val dsp_fpw : latency_ms:float -> utilization:float -> float
  val energy_mj : latency_ms:float -> power_w:float -> float
end
