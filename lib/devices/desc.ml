(** First-class machine descriptions.

    A {!t} is the pure-data description of one VLIW DSP target: issue
    slots and per-class slot masks, instruction latencies, vector width,
    register-file sizes, memory bandwidths and the clock calibration.
    Every layer of the compiler that used to read a global Hexagon-698
    constant takes a descriptor instead (defaulting to {!hexagon698}, so
    the historical behaviour is the zero-argument behaviour, bit for
    bit).

    The descriptor is deliberately dumb data — no functions, no
    closures — so it can serve as (part of) memo keys
    ({!Gcd2_util.Memo} needs structural equality) and be rendered
    canonically into cache fingerprints ({!canonical}, {!digest}).

    {b Instruction-class order.}  [slot_masks] and [latencies] are
    indexed by instruction class, in the fixed order

    {v 0 salu, 1 smul, 2 ld, 3 st, 4 valu, 5 vmpy, 6 vmpy+, 7 vshift, 8 vperm v}

    mirrored by [Gcd2_isa.Iclass.index] (the ISA layer sits above this
    one, so the contract is by documented index, not by type). *)

type t = {
  name : string;
  slot_count : int;  (** packet capacity: instructions issued per cycle *)
  slot_masks : int array;
      (** per class (see order above): bit [s] set iff slot [s] allowed *)
  latencies : int array;  (** per class: issue-to-writeback cycles *)
  vector_bytes : int;  (** HVX vector register width *)
  vector_count : int;  (** vector register file size *)
  scalar_count : int;  (** scalar register file size *)
  vtcm_bytes : int;  (** tightly-coupled vector memory capacity *)
  ddr_bytes_per_cycle : float;  (** sustained DDR bandwidth *)
  gather_bytes_per_cycle : float;  (** TCM/L2 staging bandwidth *)
  model_cycles_per_sec : float;  (** model-cycle → wall-clock calibration *)
}

let iclass_count = 9

(** The paper's Hexagon-698 cDSP: four slots, 128-byte HVX vectors, the
    slot map and latencies of [Gcd2_isa.Iclass]'s module documentation.
    This is the default device everywhere; its field values equal the
    historical global constants exactly. *)
let hexagon698 =
  {
    name = "hexagon698";
    slot_count = 4;
    (*                 salu smul ld st valu vmpy vmpy+ vshift vperm *)
    slot_masks = [| 0b1111; 0b1100; 0b0011; 0b0001; 0b1110; 0b1100; 0b1100; 0b0100; 0b1000 |];
    latencies = [| 3; 4; 4; 3; 3; 4; 6; 3; 3 |];
    vector_bytes = 128;
    vector_count = 32;
    scalar_count = 32;
    vtcm_bytes = 256 * 1024;
    ddr_bytes_per_cycle = 1.0;
    gather_bytes_per_cycle = 8.0;
    model_cycles_per_sec = 30.0e9;
  }

(** A hypothetical wider-HVX successor: 2× vector width, a fifth issue
    slot that every vector class may use, and 2× DDR / gather bandwidth.
    Scalar resources, latencies and the clock are unchanged, so every
    difference against {!hexagon698} is attributable to width, issue and
    bandwidth. *)
let hexagon_g2 =
  {
    name = "hexagon-g2";
    slot_count = 5;
    (* vector classes gain slot 4; scalar classes keep the 698 map *)
    slot_masks =
      [| 0b01111; 0b01100; 0b00011; 0b00001; 0b11110; 0b11100; 0b11100; 0b10100; 0b11000 |];
    latencies = [| 3; 4; 4; 3; 3; 4; 6; 3; 3 |];
    vector_bytes = 256;
    vector_count = 32;
    scalar_count = 32;
    vtcm_bytes = 512 * 1024;
    ddr_bytes_per_cycle = 2.0;
    gather_bytes_per_cycle = 16.0;
    model_cycles_per_sec = 30.0e9;
  }

let builtins = [ hexagon698; hexagon_g2 ]
let names = List.map (fun d -> d.name) builtins

let find name =
  let lc = String.lowercase_ascii name in
  List.find_opt (fun d -> String.lowercase_ascii d.name = lc) builtins

let get name =
  match find name with
  | Some d -> d
  | None ->
    invalid_arg
      (Fmt.str "unknown device %S (known: %s)" name (String.concat ", " names))

(** The ambient default device: [$GCD2_DEVICE] when set (unknown names
    raise [Invalid_argument]), {!hexagon698} otherwise.  Library
    defaults do {e not} read this — they pin {!hexagon698} — so the env
    var steers the CLI / serve / bench entry points without silently
    changing what a library caller computes. *)
let default () =
  match Sys.getenv_opt "GCD2_DEVICE" with
  | None | Some "" -> hexagon698
  | Some name -> get name

let validate d =
  if d.name = "" then invalid_arg "Desc: empty name";
  if d.slot_count < 1 || d.slot_count > 16 then invalid_arg "Desc: bad slot_count";
  if Array.length d.slot_masks <> iclass_count || Array.length d.latencies <> iclass_count
  then invalid_arg "Desc: class arrays must have one entry per instruction class";
  let all_slots = (1 lsl d.slot_count) - 1 in
  Array.iter
    (fun m ->
      if m = 0 then invalid_arg "Desc: a class with no slot can never issue";
      if m land lnot all_slots <> 0 then invalid_arg "Desc: slot mask exceeds slot_count")
    d.slot_masks;
  Array.iter (fun l -> if l < 1 then invalid_arg "Desc: latency must be positive") d.latencies;
  (* panels subdivide the vector by 1/2/4 and kernels pack 4-byte words *)
  if d.vector_bytes < 4 || d.vector_bytes mod 4 <> 0 then
    invalid_arg "Desc: vector_bytes must be a positive multiple of 4";
  if d.vector_count < 4 || d.scalar_count < 4 then invalid_arg "Desc: register file too small";
  (* the tile generator needs room for at least one panel's working set *)
  if d.vtcm_bytes < 16 * d.vector_bytes then invalid_arg "Desc: vtcm_bytes too small";
  if d.ddr_bytes_per_cycle <= 0.0 || d.gather_bytes_per_cycle <= 0.0 then
    invalid_arg "Desc: bandwidths must be positive";
  if d.model_cycles_per_sec <= 0.0 then invalid_arg "Desc: clock must be positive"

let equal (a : t) b = a = b

(* ------------------------------------------------------------------ *)
(* Canonical rendering                                                 *)

(** Exact canonical rendering of the full descriptor — every field, in
    declaration order, floats in hex so nothing is rounded.  This string
    is what {!Gcd2_store.Fingerprint} folds into the request digest:
    two descriptors render equal iff they are structurally equal, so
    cache entries can never collide across targets. *)
let canonical d =
  let buf = Buffer.create 256 in
  let add = Buffer.add_string buf in
  let ints a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
  add "device{name=";
  add d.name;
  add (Printf.sprintf ";slots=%d" d.slot_count);
  add ";masks=[";
  add (ints d.slot_masks);
  add "];lat=[";
  add (ints d.latencies);
  add (Printf.sprintf "];vb=%d;vregs=%d;sregs=%d;vtcm=%d" d.vector_bytes d.vector_count
         d.scalar_count d.vtcm_bytes);
  add (Printf.sprintf ";ddr=%h;gather=%h;cps=%h}" d.ddr_bytes_per_cycle
         d.gather_bytes_per_cycle d.model_cycles_per_sec);
  Buffer.contents buf

(** Lowercase-hex MD5 of {!canonical} — the short content-address used
    to tag per-device memo keys and reports. *)
let digest d = Stdlib.Digest.to_hex (Stdlib.Digest.string (canonical d))

(* ------------------------------------------------------------------ *)
(* Derived timing helpers                                              *)

let ms_of_cycles d cycles = cycles /. (d.model_cycles_per_sec /. 1e3)
let cycles_of_us d us = us *. d.model_cycles_per_sec /. 1e6
let cycles_of_ms d ms = ms *. d.model_cycles_per_sec /. 1e3

let pp ppf d =
  Fmt.pf ppf "%s (%d slots, %dB vectors, %.1f B/cyc DDR)" d.name d.slot_count d.vector_bytes
    d.ddr_bytes_per_cycle
